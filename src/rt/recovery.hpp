// snp::rt — recovery policy: bounded retry, deadlines, and the
// failover/degrade ladder.
//
// The policy ladder (docs/robustness.md):
//   abort    — propagate the first failure unchanged; no second chances.
//   retry    — each faulting operation is re-attempted up to
//              max_attempts times with deterministic exponential
//              backoff; exhaustion propagates kExhausted.
//   failover — retry first; a shard whose device stays dead has its
//              rows redistributed across surviving devices
//              (multi::MultiGpuContext); with no survivors, fall
//              through to the CPU rung.
//   degrade  — retry first; if the device pipeline still cannot finish,
//              the remaining rows are recomputed on the host
//              (cpu::compare_blocked_async) and the report is flagged
//              `degraded` — slower, never wrong, never silent.
//
// Everything here is deterministic: backoff is a pure function of the
// attempt number, and FaultEvents are logged in completion order under a
// lock so soak tests can assert exact recovery behaviour across 100
// seeds.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

#include "obs/trace_context.hpp"
#include "rt/fault.hpp"
#include "rt/status.hpp"

namespace snp::rt {

enum class FailPolicy : std::uint8_t {
  kAbort = 0,
  kRetry,
  kFailover,
  kDegrade,
};

[[nodiscard]] std::string_view to_string(FailPolicy policy);
/// Parses "abort|retry|failover|degrade"; nullopt on anything else.
[[nodiscard]] std::optional<FailPolicy> parse_fail_policy(
    std::string_view text);

/// Token bucket bounding the *total* retry volume shared by a request
/// class, so correlated faults fast-fail to the next recovery rung
/// instead of multiplying attempts across concurrent requests (the
/// retry-storm failure mode from "The Tail at Scale"). Deterministic by
/// construction: the bucket refills a fixed fraction of a token per
/// *successful* operation — refill is driven by operation ordinals,
/// never wall-clock — so seeded soaks replay bit-identically.
class RetryBudget {
 public:
  explicit RetryBudget(double capacity, double refill_per_success = 0.1)
      : capacity_(std::max(0.0, capacity)),
        refill_(std::max(0.0, refill_per_success)),
        tokens_(std::max(0.0, capacity)) {}

  /// Consumes one token for a retry; false when the bucket is dry (the
  /// caller must fast-fail instead of re-attempting).
  [[nodiscard]] bool try_acquire() {
    std::lock_guard<std::mutex> lock(mu_);
    if (tokens_ < 1.0) return false;
    tokens_ -= 1.0;
    return true;
  }
  /// Credits one successful operation; fractions accumulate and the
  /// bucket is capped at its capacity.
  void note_success() {
    std::lock_guard<std::mutex> lock(mu_);
    tokens_ = std::min(capacity_, tokens_ + refill_);
  }
  [[nodiscard]] double available() const {
    std::lock_guard<std::mutex> lock(mu_);
    return tokens_;
  }
  [[nodiscard]] double capacity() const { return capacity_; }

 private:
  mutable std::mutex mu_;
  double capacity_;
  double refill_;
  double tokens_;
};

/// Knobs for the retry rung. Backoff for attempt n (1-based, i.e. after
/// the nth failure) is min(backoff_base_s * 2^(n-1), backoff_max_s) —
/// deterministic, so two runs with the same plan sleep identically.
struct RecoveryOptions {
  FailPolicy policy = FailPolicy::kRetry;
  int max_attempts = 4;             ///< total tries per operation
  double backoff_base_s = 100e-6;   ///< first-retry sleep
  double backoff_max_s = 10e-3;     ///< backoff ceiling
  double op_deadline_s = 0.0;       ///< per-operation watchdog (0 = off)
  /// Shared retry budget (null = unbounded). Copies of one
  /// RecoveryOptions share the same bucket, which is exactly how a
  /// request class shares its budget across concurrent operations.
  std::shared_ptr<RetryBudget> budget;
};

[[nodiscard]] double backoff_delay_s(const RecoveryOptions& opts,
                                     int attempt);

/// One recovery-relevant incident: a fault observed and what was done
/// about it. Collected into TimingReport::fault_events / the CLI report.
struct FaultEvent {
  std::string site;     ///< injection-site / operation label
  ErrorCode code = ErrorCode::kInternal;
  std::string action;   ///< "retry" | "failover" | "degrade" | "abort" |
                        ///< "exhausted"
  std::int64_t chunk = -1;   ///< chunk index or device id (-1 = n/a)
  int attempt = 0;           ///< attempt number the fault hit
  std::string detail;        ///< human-readable cause (Error::what())
  std::uint64_t trace_id = 0;  ///< originating request (0 = none)
};

/// Tally of recovery actions over a run's fault events — the shape the
/// cost ledger's retry/failover/degrade surcharges want (obs::CostLedger
/// must not depend on rt, so svc folds these counts in).
struct ActionCounts {
  std::uint32_t retries = 0;
  std::uint32_t failovers = 0;
  std::uint32_t degrades = 0;
  std::uint32_t aborts = 0;
  std::uint32_t exhausted = 0;
};

/// Counts events by their recorded action string (unknown actions are
/// ignored — forward compatibility over strictness).
[[nodiscard]] ActionCounts count_actions(std::span<const FaultEvent> events);

/// Thread-safe event sink shared by every retry scope of one run.
class FaultLog {
 public:
  void record(FaultEvent event) {
    std::lock_guard<std::mutex> lock(mu_);
    events_.push_back(std::move(event));
  }
  [[nodiscard]] std::vector<FaultEvent> snapshot() const {
    std::lock_guard<std::mutex> lock(mu_);
    return events_;
  }
  [[nodiscard]] std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return events_.size();
  }

 private:
  mutable std::mutex mu_;
  std::vector<FaultEvent> events_;
};

/// Sleeps for the deterministic backoff of `attempt` (no-op for
/// non-positive delays). Split out so tests can pin the schedule.
void backoff_sleep(const RecoveryOptions& opts, int attempt);

/// Per-operation / per-request watchdog. Budget semantics are explicit:
///   seconds > 0 (finite)  — expires once that much time elapses;
///   seconds == 0 or +inf  — disabled: never expires (0 matches the
///                           op_deadline_s = 0 "off" convention); NaN is
///                           treated as disabled too;
///   seconds < 0           — already expired at construction (a request
///                           admitted after its deadline).
/// All measurements use the monotonic clock (std::chrono::steady_clock),
/// never the wall clock — an NTP step cannot un-expire a deadline, so
/// injected `timeout` faults replay bit-identically. expired() also
/// samples the kTimeout injection site (before the clock check, so even
/// a disabled deadline is injectable), making stuck operations testable
/// without real stalls.
class Deadline {
 public:
  explicit Deadline(double seconds);
  /// True if the deadline passed (or a timeout fault fired). `index`
  /// feeds the injector's at= filter.
  [[nodiscard]] bool expired(std::int64_t index = -1) const;
  /// Seconds of budget left: +inf when disabled, 0 at/after expiry
  /// (including negative budgets). Never samples the injector.
  [[nodiscard]] double remaining_s() const;
  [[nodiscard]] double seconds() const { return seconds_; }

 private:
  double seconds_ = 0.0;
  double start_s_ = 0.0;
};

/// Cooperative cancellation handle shared between a request's owner (the
/// service dispatcher) and the pipeline executing it. The owner arms the
/// token with an explicit cancel(reason) and/or an attached Deadline;
/// pipeline code calls checkpoint() between chunks and at the top of
/// thread-pool tasks, which throws the structured reason as soon as the
/// token fires — so an expired request stops consuming device work at
/// the next chunk boundary instead of running to completion.
///
/// Determinism: a token with no attached deadline never touches the
/// fault injector, so adding checkpoints to a pipeline does not shift
/// the kTimeout ordinal stream of existing seeded soaks.
class CancelToken {
 public:
  CancelToken() = default;
  /// Arms the token with a deadline; checkpoint() throws kDeadline once
  /// it expires. Disabled budgets (0 / +inf) never fire.
  explicit CancelToken(Deadline deadline) : deadline_(deadline) {}

  /// Fires the token with an explicit reason. First cancel wins; later
  /// calls are no-ops.
  void cancel(Status reason);
  [[nodiscard]] bool cancelled() const {
    return cancelled_.load(std::memory_order_acquire);
  }
  /// The pending cancellation — explicit reason first, then an expired
  /// attached deadline (as kDeadline) — or nullopt when the token is
  /// idle. `index` feeds the timeout injector's at= filter.
  [[nodiscard]] std::optional<Status> poll(std::int64_t index = -1) const;
  /// Throws Error with the pending cancellation, if any.
  void checkpoint(std::int64_t index = -1) const;

 private:
  mutable std::mutex mu_;
  std::atomic<bool> cancelled_{false};
  Status reason_;
  std::optional<Deadline> deadline_;
};

/// Per-device circuit breaker: closed → open after failure_threshold
/// consecutive failures → half-open via deterministic probes (every
/// probe_interval-th denied attempt is let through as a probe) → closed
/// again after success_threshold consecutive probe successes. It sits
/// *ahead of* the failover/degrade ladder: an open breaker fails fast
/// with kCancelled so the ladder's CPU rung takes over without paying
/// another doomed device attempt. State advances only on call ordinals
/// (allow/on_success/on_failure), never wall-clock, so seeded fault
/// soaks replay bit-identically. Transitions emit rt.breaker.* counters
/// and flight-recorder kBreaker events.
struct BreakerOptions {
  int failure_threshold = 0;  ///< consecutive failures to open (0 = off)
  int probe_interval = 8;     ///< every Nth denied attempt probes
  int success_threshold = 2;  ///< probe successes needed to close
};

class CircuitBreaker {
 public:
  enum class State : std::uint8_t { kClosed = 0, kOpen, kHalfOpen };

  CircuitBreaker(std::string name, BreakerOptions opts)
      : name_(std::move(name)), opts_(opts) {}

  /// True = the attempt may proceed (closed, half-open, or an open-state
  /// probe turn); false = fast-fail without touching the device.
  [[nodiscard]] bool allow();
  void on_success();
  void on_failure();
  [[nodiscard]] State state() const;
  /// Back to closed with all counters zeroed (tests / manual override).
  void reset();
  [[nodiscard]] const std::string& name() const { return name_; }

 private:
  void transition_locked(State next);

  std::string name_;
  BreakerOptions opts_;
  mutable std::mutex mu_;
  State state_ = State::kClosed;
  int consecutive_failures_ = 0;
  int probe_successes_ = 0;
  std::uint64_t denied_ = 0;
};

[[nodiscard]] std::string_view to_string(CircuitBreaker::State state);

/// Process-wide breaker table keyed by device name: every pipeline that
/// targets a device shares its breaker, which is what lets correlated
/// failures on one device open the circuit for everyone. Tests that run
/// several breaker scenarios in one process must reset() between them.
class BreakerRegistry {
 public:
  static BreakerRegistry& global();
  /// Returns the breaker for `name`, creating it with `opts` on first
  /// use (later calls keep the original options).
  CircuitBreaker& get(const std::string& name, const BreakerOptions& opts);
  void reset();

 private:
  std::mutex mu_;
  std::map<std::string, std::unique_ptr<CircuitBreaker>> breakers_;
};

/// Extracts an rt::Status from any in-flight exception: rt::Error passes
/// its status through; everything else is wrapped as kInternal (and is
/// therefore not retried — unknown failures are bugs until classified).
[[nodiscard]] Status status_from_exception(const std::exception& e);

namespace detail {
/// Out-of-line so this header does not pull in the obs macros.
void count_retry_metrics(bool retried);
/// Counts rt.budget.fast_fail when a dry budget vetoed a retry.
void count_budget_metrics(bool budget_dry);
/// Flight-recorder hook: records a fault/retry event tagged with the
/// ambient trace id (and installs the SNPRT code namer on first use so
/// dumps print "SNPRT-LAUNCH" instead of a number).
void record_fault_flight(ErrorCode code, std::int64_t chunk, int attempt,
                         bool retried);
}  // namespace detail

/// Runs `fn` under the retry rung: up to opts.max_attempts tries while
/// the failure is retryable (see is_retryable(Status)), with
/// deterministic backoff between tries and an optional per-operation
/// deadline. Policy kAbort rethrows the first failure immediately.
/// When opts.budget is set, every retry must first win a token from the
/// shared bucket — a dry bucket turns a retryable failure into an
/// immediate Error(kExhausted) fast-fail, and every success refills the
/// bucket by its configured ratio. Exhaustion throws Error(kExhausted)
/// — deliberately non-retryable, so an enclosing retry scope cannot
/// multiply attempts. Every fault and the action taken is recorded in
/// `log` (if non-null) and counted in rt.retries.
template <typename Fn>
auto with_retry(const RecoveryOptions& opts, std::string_view site_label,
                std::int64_t chunk, FaultLog* log, Fn&& fn)
    -> decltype(fn()) {
  const int max_attempts =
      opts.policy == FailPolicy::kAbort ? 1 : std::max(1, opts.max_attempts);
  Deadline deadline(opts.op_deadline_s);
  for (int attempt = 1;; ++attempt) {
    try {
      if (deadline.expired(chunk)) {
        throw Error(ErrorCode::kTimeout,
                    "operation '" + std::string(site_label) +
                        "' exceeded its deadline");
      }
      if constexpr (std::is_void_v<decltype(fn())>) {
        fn();
        if (opts.budget != nullptr) opts.budget->note_success();
        return;
      } else {
        auto result = fn();
        if (opts.budget != nullptr) opts.budget->note_success();
        return result;
      }
    } catch (const Error& e) {
      const Status& st = e.status();
      bool can_retry = attempt < max_attempts && is_retryable(st) &&
                       st.code != ErrorCode::kExhausted;
      bool budget_dry = false;
      if (can_retry && opts.policy != FailPolicy::kAbort &&
          opts.budget != nullptr && !opts.budget->try_acquire()) {
        can_retry = false;
        budget_dry = true;
      }
      detail::count_retry_metrics(can_retry);
      detail::count_budget_metrics(budget_dry);
      detail::record_fault_flight(st.code, chunk, attempt, can_retry);
      if (log != nullptr) {
        FaultEvent ev;
        ev.site = std::string(site_label);
        ev.code = st.code;
        ev.action = opts.policy == FailPolicy::kAbort ? "abort"
                    : can_retry                       ? "retry"
                                                      : "exhausted";
        ev.chunk = chunk;
        ev.attempt = attempt;
        ev.detail = e.what();
        ev.trace_id = obs::current_trace().trace_id;
        log->record(std::move(ev));
      }
      if (opts.policy == FailPolicy::kAbort) throw;
      if (!can_retry) {
        if (!is_retryable(st) || st.code == ErrorCode::kExhausted) throw;
        if (budget_dry) {
          throw Error(ErrorCode::kExhausted,
                      "operation '" + std::string(site_label) +
                          "' fast-failed: retry budget exhausted; last: " +
                          e.what());
        }
        throw Error(ErrorCode::kExhausted,
                    "operation '" + std::string(site_label) + "' failed " +
                        std::to_string(attempt) +
                        " attempt(s); last: " + e.what());
      }
      backoff_sleep(opts, attempt);
    }
  }
}

}  // namespace snp::rt
