#include "rt/fault.hpp"

#include <cstdio>
#include <cstdlib>

#include "obs/obs.hpp"

namespace snp::rt {
namespace {

// splitmix64: tiny, stateless, and excellent avalanche — each (seed,
// site, ordinal) triple maps to an independent uniform draw without any
// shared RNG stream to race on.
std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

double uniform01(std::uint64_t seed, FaultSite site, std::uint64_t ordinal) {
  const std::uint64_t h = splitmix64(
      splitmix64(seed ^ (static_cast<std::uint64_t>(site) << 56)) ^ ordinal);
  // 53 mantissa bits -> [0, 1).
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

std::optional<FaultSite> site_from_name(std::string_view name) {
  if (name == "alloc") return FaultSite::kAlloc;
  if (name == "h2d") return FaultSite::kH2d;
  if (name == "launch") return FaultSite::kLaunch;
  if (name == "readback") return FaultSite::kReadback;
  if (name == "pool") return FaultSite::kPool;
  if (name == "io") return FaultSite::kIo;
  if (name == "shard") return FaultSite::kShard;
  if (name == "timeout") return FaultSite::kTimeout;
  return std::nullopt;
}

[[noreturn]] void parse_fail(std::string_view spec, std::string_view why) {
  throw Error(ErrorCode::kInternal,
              "bad fault plan '" + std::string(spec) + "': " +
                  std::string(why));
}

}  // namespace

std::string_view site_name(FaultSite site) {
  switch (site) {
    case FaultSite::kAlloc:
      return "alloc";
    case FaultSite::kH2d:
      return "h2d";
    case FaultSite::kLaunch:
      return "launch";
    case FaultSite::kReadback:
      return "readback";
    case FaultSite::kPool:
      return "pool";
    case FaultSite::kIo:
      return "io";
    case FaultSite::kShard:
      return "shard";
    case FaultSite::kTimeout:
      return "timeout";
  }
  return "?";
}

ErrorCode site_code(FaultSite site) {
  switch (site) {
    case FaultSite::kAlloc:
      return ErrorCode::kAlloc;
    case FaultSite::kH2d:
      return ErrorCode::kH2d;
    case FaultSite::kLaunch:
      return ErrorCode::kLaunch;
    case FaultSite::kReadback:
      return ErrorCode::kReadback;
    case FaultSite::kPool:
      return ErrorCode::kPoolTask;
    case FaultSite::kIo:
      return ErrorCode::kIoCorrupt;
    case FaultSite::kShard:
      return ErrorCode::kShardLost;
    case FaultSite::kTimeout:
      return ErrorCode::kTimeout;
  }
  return ErrorCode::kInternal;
}

FaultPlan FaultPlan::parse(std::string_view spec) {
  FaultPlan plan;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    const std::size_t comma = spec.find(',', pos);
    std::string_view clause_sv = spec.substr(
        pos, comma == std::string_view::npos ? std::string_view::npos
                                             : comma - pos);
    pos = (comma == std::string_view::npos) ? spec.size() + 1 : comma + 1;
    if (clause_sv.empty()) {
      if (spec.empty()) break;  // "" -> empty plan
      parse_fail(spec, "empty clause");
    }

    FaultClause clause;
    std::size_t cpos = 0;
    const std::size_t colon = clause_sv.find(':');
    const std::string_view name = clause_sv.substr(0, colon);
    const auto site = site_from_name(name);
    if (!site) parse_fail(spec, "unknown site '" + std::string(name) + "'");
    clause.site = *site;
    cpos = (colon == std::string_view::npos) ? clause_sv.size() : colon + 1;

    bool any_trigger = false;
    while (cpos < clause_sv.size()) {
      const std::size_t next = clause_sv.find(':', cpos);
      std::string_view kv = clause_sv.substr(
          cpos, next == std::string_view::npos ? std::string_view::npos
                                               : next - cpos);
      cpos = (next == std::string_view::npos) ? clause_sv.size() : next + 1;
      const std::size_t eq = kv.find('=');
      if (eq == std::string_view::npos || eq == 0 || eq + 1 >= kv.size())
        parse_fail(spec, "expected key=value, got '" + std::string(kv) + "'");
      const std::string_view key = kv.substr(0, eq);
      const std::string value(kv.substr(eq + 1));
      char* end = nullptr;
      if (key == "p") {
        clause.p = std::strtod(value.c_str(), &end);
        if (end == nullptr || *end != '\0' || clause.p < 0.0 || clause.p > 1.0)
          parse_fail(spec, "p must be a number in [0,1]");
        any_trigger = any_trigger || clause.p > 0.0;
      } else if (key == "seed") {
        clause.seed = std::strtoull(value.c_str(), &end, 10);
        if (end == nullptr || *end != '\0') parse_fail(spec, "bad seed");
      } else if (key == "after") {
        clause.after = std::strtoull(value.c_str(), &end, 10);
        if (end == nullptr || *end != '\0') parse_fail(spec, "bad after");
        any_trigger = any_trigger || clause.after > 0;
      } else if (key == "at") {
        clause.at = std::strtoll(value.c_str(), &end, 10);
        if (end == nullptr || *end != '\0' || clause.at < 0)
          parse_fail(spec, "at must be a non-negative integer");
      } else if (key == "count") {
        clause.count = std::strtoull(value.c_str(), &end, 10);
        if (end == nullptr || *end != '\0') parse_fail(spec, "bad count");
      } else {
        parse_fail(spec, "unknown key '" + std::string(key) + "'");
      }
    }
    if (!any_trigger)
      parse_fail(spec, "clause '" + std::string(name) +
                           "' has no trigger (need p> 0 or after>0)");
    plan.clauses.push_back(clause);
  }
  return plan;
}

FaultInjector& FaultInjector::global() {
  static FaultInjector* injector = [] {
    auto* inj = new FaultInjector();
    // NOLINTNEXTLINE(concurrency-mt-unsafe): read-once at first use;
    // nothing in the process ever calls setenv.
    if (const char* env = std::getenv("SNPCMP_FAULTS");
        env != nullptr && *env != '\0') {
      try {
        inj->arm(FaultPlan::parse(env));
      } catch (const Error& e) {
        std::fprintf(stderr, "snpcmp: ignoring SNPCMP_FAULTS: %s\n",
                     e.what());
      }
    }
    return inj;
  }();
  return *injector;
}

void FaultInjector::arm(FaultPlan plan) {
  std::lock_guard<std::mutex> lock(mu_);
  state_.clear();
  for (auto& clause : plan.clauses) state_.push_back(ClauseState{clause});
  for (auto& n : site_checks_) n = 0;
  armed_.store(!state_.empty(), std::memory_order_relaxed);
}

std::optional<Status> FaultInjector::check(FaultSite site,
                                           std::int64_t index) {
  if (!armed_.load(std::memory_order_relaxed)) return std::nullopt;
  std::lock_guard<std::mutex> lock(mu_);
  if (state_.empty()) return std::nullopt;
  const std::uint64_t ordinal = ++site_checks_[static_cast<int>(site)];
  for (auto& cs : state_) {
    const FaultClause& c = cs.clause;
    if (c.site != site) continue;
    if (c.at >= 0 && index >= 0 && index != c.at) continue;
    ++cs.checks;
    if (c.count != 0 && cs.fires >= c.count) continue;
    const bool fire_after = c.after != 0 && cs.checks == c.after;
    const bool fire_p =
        c.p > 0.0 && uniform01(c.seed, site, ordinal) < c.p;
    if (!fire_after && !fire_p) continue;
    ++cs.fires;
    SNP_OBS_COUNT("rt.faults_injected", 1);
    Status st = Status::failure(
        site_code(site),
        "injected fault at site '" + std::string(site_name(site)) +
            "' (check #" + std::to_string(cs.checks) +
            (index >= 0 ? ", index " + std::to_string(index) : "") + ")");
    st.injected = true;
    return st;
  }
  return std::nullopt;
}

std::uint64_t FaultInjector::fires() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t total = 0;
  for (const auto& cs : state_) total += cs.fires;
  return total;
}

}  // namespace snp::rt
