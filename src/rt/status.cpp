#include "rt/status.hpp"

namespace snp::rt {

std::string_view code_name(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk:
      return "SNPRT-OK";
    case ErrorCode::kAlloc:
      return "SNPRT-ALLOC";
    case ErrorCode::kH2d:
      return "SNPRT-H2D";
    case ErrorCode::kLaunch:
      return "SNPRT-LAUNCH";
    case ErrorCode::kReadback:
      return "SNPRT-READBACK";
    case ErrorCode::kTimeout:
      return "SNPRT-TIMEOUT";
    case ErrorCode::kIoCorrupt:
      return "SNPRT-IO-CORRUPT";
    case ErrorCode::kShardLost:
      return "SNPRT-SHARD-LOST";
    case ErrorCode::kPoolTask:
      return "SNPRT-POOL";
    case ErrorCode::kExhausted:
      return "SNPRT-EXHAUSTED";
    case ErrorCode::kCancelled:
      return "SNPRT-CANCELLED";
    case ErrorCode::kInternal:
      return "SNPRT-INTERNAL";
    case ErrorCode::kOverload:
      return "SNPRT-OVERLOAD";
    case ErrorCode::kDeadline:
      return "SNPRT-DEADLINE";
  }
  return "SNPRT-INTERNAL";
}

bool is_retryable(ErrorCode code) {
  switch (code) {
    case ErrorCode::kAlloc:
    case ErrorCode::kH2d:
    case ErrorCode::kLaunch:
    case ErrorCode::kReadback:
    case ErrorCode::kTimeout:
    case ErrorCode::kPoolTask:
      return true;
    default:
      return false;
  }
}

std::string Status::to_string() const {
  std::string out = "[";
  out += code_name(code);
  out += "] ";
  out += message;
  if (code == ErrorCode::kIoCorrupt) {
    out += " (byte ";
    out += std::to_string(offset);
    out += ")";
  }
  if (injected) out += " [injected]";
  return out;
}

}  // namespace snp::rt
