#include "rt/recovery.hpp"

#include <chrono>
#include <cmath>
#include <thread>

#include "obs/obs.hpp"

namespace snp::rt {
namespace {

double wall_now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

std::string_view to_string(FailPolicy policy) {
  switch (policy) {
    case FailPolicy::kAbort:
      return "abort";
    case FailPolicy::kRetry:
      return "retry";
    case FailPolicy::kFailover:
      return "failover";
    case FailPolicy::kDegrade:
      return "degrade";
  }
  return "?";
}

std::optional<FailPolicy> parse_fail_policy(std::string_view text) {
  if (text == "abort") return FailPolicy::kAbort;
  if (text == "retry") return FailPolicy::kRetry;
  if (text == "failover") return FailPolicy::kFailover;
  if (text == "degrade") return FailPolicy::kDegrade;
  return std::nullopt;
}

double backoff_delay_s(const RecoveryOptions& opts, int attempt) {
  if (attempt < 1 || opts.backoff_base_s <= 0.0) return 0.0;
  const double raw = opts.backoff_base_s * std::ldexp(1.0, attempt - 1);
  return std::min(raw, opts.backoff_max_s);
}

void backoff_sleep(const RecoveryOptions& opts, int attempt) {
  const double delay = backoff_delay_s(opts, attempt);
  if (delay <= 0.0) return;
  std::this_thread::sleep_for(std::chrono::duration<double>(delay));
}

Deadline::Deadline(double seconds)
    : seconds_(seconds), start_s_(seconds > 0.0 ? wall_now_s() : 0.0) {}

bool Deadline::expired(std::int64_t index) const {
  auto& injector = FaultInjector::global();
  if (injector.armed() &&
      injector.check(FaultSite::kTimeout, index).has_value()) {
    return true;
  }
  if (seconds_ <= 0.0) return false;
  return wall_now_s() - start_s_ > seconds_;
}

ActionCounts count_actions(std::span<const FaultEvent> events) {
  ActionCounts counts;
  for (const FaultEvent& ev : events) {
    if (ev.action == "retry") {
      counts.retries++;
    } else if (ev.action == "failover") {
      counts.failovers++;
    } else if (ev.action == "degrade") {
      counts.degrades++;
    } else if (ev.action == "abort") {
      counts.aborts++;
    } else if (ev.action == "exhausted") {
      counts.exhausted++;
    }
  }
  return counts;
}

Status status_from_exception(const std::exception& e) {
  if (const auto* err = dynamic_cast<const Error*>(&e))
    return err->status();
  return Status::failure(ErrorCode::kInternal, e.what());
}

namespace detail {
void count_retry_metrics(bool retried) {
  if (retried) SNP_OBS_COUNT("rt.retries", 1);
}

void record_fault_flight([[maybe_unused]] ErrorCode code,
                         [[maybe_unused]] std::int64_t chunk,
                         [[maybe_unused]] int attempt,
                         [[maybe_unused]] bool retried) {
#if SNPCMP_OBS_ENABLED
  // One-time namer install: dumps print "SNPRT-LAUNCH", not a number.
  static const bool namer_installed = [] {
    obs::FlightRecorder::global().set_code_namer(+[](std::uint32_t c) {
      return code_name(static_cast<ErrorCode>(c));
    });
    return true;
  }();
  (void)namer_installed;
  SNP_OBS_FLIGHT(retried ? obs::FlightKind::kRetry : obs::FlightKind::kFault,
                 obs::current_trace().trace_id,
                 static_cast<std::uint32_t>(code), chunk, attempt);
#endif
}
}  // namespace detail

}  // namespace snp::rt
