#include "rt/recovery.hpp"

#include <chrono>
#include <cmath>
#include <limits>
#include <thread>

#include "obs/obs.hpp"

namespace snp::rt {
namespace {

// Monotonic by contract: every deadline measurement in this file uses
// steady_clock, never system_clock — an NTP step must not be able to
// expire (or un-expire) a request deadline mid-flight.
double mono_now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// 0, +inf, and NaN all mean "no budget": the deadline never expires on
// its own (the injector can still fire it). Negative budgets — -inf
// included — are expired at birth and handled by the callers.
bool deadline_disabled(double seconds) {
  if (std::isnan(seconds)) return true;
  return seconds == 0.0 || (std::isinf(seconds) && seconds > 0.0);
}

}  // namespace

std::string_view to_string(FailPolicy policy) {
  switch (policy) {
    case FailPolicy::kAbort:
      return "abort";
    case FailPolicy::kRetry:
      return "retry";
    case FailPolicy::kFailover:
      return "failover";
    case FailPolicy::kDegrade:
      return "degrade";
  }
  return "?";
}

std::optional<FailPolicy> parse_fail_policy(std::string_view text) {
  if (text == "abort") return FailPolicy::kAbort;
  if (text == "retry") return FailPolicy::kRetry;
  if (text == "failover") return FailPolicy::kFailover;
  if (text == "degrade") return FailPolicy::kDegrade;
  return std::nullopt;
}

double backoff_delay_s(const RecoveryOptions& opts, int attempt) {
  if (attempt < 1 || opts.backoff_base_s <= 0.0) return 0.0;
  const double raw = opts.backoff_base_s * std::ldexp(1.0, attempt - 1);
  return std::min(raw, opts.backoff_max_s);
}

void backoff_sleep(const RecoveryOptions& opts, int attempt) {
  const double delay = backoff_delay_s(opts, attempt);
  if (delay <= 0.0) return;
  std::this_thread::sleep_for(std::chrono::duration<double>(delay));
}

Deadline::Deadline(double seconds)
    : seconds_(seconds),
      start_s_(!deadline_disabled(seconds) && seconds > 0.0 ? mono_now_s()
                                                            : 0.0) {}

bool Deadline::expired(std::int64_t index) const {
  auto& injector = FaultInjector::global();
  if (injector.armed() &&
      injector.check(FaultSite::kTimeout, index).has_value()) {
    return true;
  }
  if (deadline_disabled(seconds_)) return false;
  if (seconds_ < 0.0) return true;  // expired at construction
  return mono_now_s() - start_s_ > seconds_;
}

double Deadline::remaining_s() const {
  if (deadline_disabled(seconds_)) {
    return std::numeric_limits<double>::infinity();
  }
  if (seconds_ < 0.0) return 0.0;
  return std::max(0.0, seconds_ - (mono_now_s() - start_s_));
}

void CancelToken::cancel(Status reason) {
  std::lock_guard<std::mutex> lock(mu_);
  if (cancelled_.load(std::memory_order_relaxed)) return;
  reason_ = std::move(reason);
  cancelled_.store(true, std::memory_order_release);
}

std::optional<Status> CancelToken::poll(std::int64_t index) const {
  if (cancelled_.load(std::memory_order_acquire)) {
    std::lock_guard<std::mutex> lock(mu_);
    return reason_;
  }
  // No attached deadline → no injector sampling: adding checkpoints to
  // a pipeline must not shift the kTimeout ordinal stream of existing
  // seeded soaks.
  if (deadline_.has_value() && deadline_->expired(index)) {
    return Status::failure(ErrorCode::kDeadline,
                           "request deadline expired before completion");
  }
  return std::nullopt;
}

void CancelToken::checkpoint(std::int64_t index) const {
  if (auto pending = poll(index)) throw Error(std::move(*pending));
}

std::string_view to_string(CircuitBreaker::State state) {
  switch (state) {
    case CircuitBreaker::State::kClosed:
      return "closed";
    case CircuitBreaker::State::kOpen:
      return "open";
    case CircuitBreaker::State::kHalfOpen:
      return "half-open";
  }
  return "?";
}

bool CircuitBreaker::allow() {
  std::lock_guard<std::mutex> lock(mu_);
  switch (state_) {
    case State::kClosed:
      return true;
    case State::kHalfOpen:
      SNP_OBS_COUNT("rt.breaker.probe", 1);
      return true;
    case State::kOpen: {
      ++denied_;
      const auto interval =
          static_cast<std::uint64_t>(std::max(1, opts_.probe_interval));
      if (denied_ % interval == 0) {
        transition_locked(State::kHalfOpen);
        SNP_OBS_COUNT("rt.breaker.probe", 1);
        return true;
      }
      SNP_OBS_COUNT("rt.breaker.fast_fail", 1);
      return false;
    }
  }
  return true;
}

void CircuitBreaker::on_success() {
  std::lock_guard<std::mutex> lock(mu_);
  consecutive_failures_ = 0;
  if (state_ == State::kHalfOpen &&
      ++probe_successes_ >= std::max(1, opts_.success_threshold)) {
    transition_locked(State::kClosed);
  }
}

void CircuitBreaker::on_failure() {
  std::lock_guard<std::mutex> lock(mu_);
  probe_successes_ = 0;
  if (state_ == State::kHalfOpen) {
    transition_locked(State::kOpen);
    return;
  }
  if (state_ == State::kClosed && opts_.failure_threshold > 0 &&
      ++consecutive_failures_ >= opts_.failure_threshold) {
    transition_locked(State::kOpen);
  }
}

CircuitBreaker::State CircuitBreaker::state() const {
  std::lock_guard<std::mutex> lock(mu_);
  return state_;
}

void CircuitBreaker::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  state_ = State::kClosed;
  consecutive_failures_ = 0;
  probe_successes_ = 0;
  denied_ = 0;
}

void CircuitBreaker::transition_locked(State next) {
  state_ = next;
  switch (next) {
    case State::kClosed:
      denied_ = 0;
      probe_successes_ = 0;
      consecutive_failures_ = 0;
      SNP_OBS_COUNT("rt.breaker.close", 1);
      break;
    case State::kOpen:
      probe_successes_ = 0;
      SNP_OBS_COUNT("rt.breaker.open", 1);
      break;
    case State::kHalfOpen:
      SNP_OBS_COUNT("rt.breaker.half_open", 1);
      break;
  }
  SNP_OBS_FLIGHT(obs::FlightKind::kBreaker, obs::current_trace().trace_id,
                 static_cast<std::uint32_t>(next), -1, 0);
}

BreakerRegistry& BreakerRegistry::global() {
  static BreakerRegistry registry;
  return registry;
}

CircuitBreaker& BreakerRegistry::get(const std::string& name,
                                     const BreakerOptions& opts) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = breakers_.find(name);
  if (it == breakers_.end()) {
    it = breakers_
             .emplace(name, std::make_unique<CircuitBreaker>(name, opts))
             .first;
  }
  return *it->second;
}

void BreakerRegistry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  breakers_.clear();
}

ActionCounts count_actions(std::span<const FaultEvent> events) {
  ActionCounts counts;
  for (const FaultEvent& ev : events) {
    if (ev.action == "retry") {
      counts.retries++;
    } else if (ev.action == "failover") {
      counts.failovers++;
    } else if (ev.action == "degrade") {
      counts.degrades++;
    } else if (ev.action == "abort") {
      counts.aborts++;
    } else if (ev.action == "exhausted") {
      counts.exhausted++;
    }
  }
  return counts;
}

Status status_from_exception(const std::exception& e) {
  if (const auto* err = dynamic_cast<const Error*>(&e))
    return err->status();
  return Status::failure(ErrorCode::kInternal, e.what());
}

namespace detail {
void count_retry_metrics(bool retried) {
  if (retried) SNP_OBS_COUNT("rt.retries", 1);
}

void count_budget_metrics(bool budget_dry) {
  if (budget_dry) SNP_OBS_COUNT("rt.budget.fast_fail", 1);
}

void record_fault_flight([[maybe_unused]] ErrorCode code,
                         [[maybe_unused]] std::int64_t chunk,
                         [[maybe_unused]] int attempt,
                         [[maybe_unused]] bool retried) {
#if SNPCMP_OBS_ENABLED
  // One-time namer install: dumps print "SNPRT-LAUNCH", not a number.
  static const bool namer_installed = [] {
    obs::FlightRecorder::global().set_code_namer(+[](std::uint32_t c) {
      return code_name(static_cast<ErrorCode>(c));
    });
    return true;
  }();
  (void)namer_installed;
  SNP_OBS_FLIGHT(retried ? obs::FlightKind::kRetry : obs::FlightKind::kFault,
                 obs::current_trace().trace_id,
                 static_cast<std::uint32_t>(code), chunk, attempt);
#endif
}
}  // namespace detail

}  // namespace snp::rt
