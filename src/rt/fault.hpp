// snp::rt — deterministic, seeded fault injection.
//
// Recovery code that only runs when hardware actually misbehaves is
// untested code. This header makes every failure path in the stack
// reachable on purpose and reproducibly: a FaultPlan (parsed from
// `--inject-faults` or the SNPCMP_FAULTS env var) arms named injection
// sites — clmini buffer alloc/write/launch/read, the exec pool bodies,
// the io readers, multi-GPU shards, and the retry watchdog — and each
// site asks the process-wide FaultInjector whether to synthesize a
// failure *before* mutating any state, so a retried operation replays
// bit-identically.
//
// Plan grammar (docs/robustness.md):
//   plan    := clause (',' clause)*
//   clause  := site (':' key '=' value)*
//   site    := alloc | h2d | launch | readback | pool | io | shard | timeout
//   key     := p      probability per check, in [0,1]   (default 0)
//            | seed   RNG seed for the p draw            (default 0)
//            | after  fire on exactly the Nth check (1-based; 0 = off)
//            | at     only consider checks whose index operand == at
//            | count  cap on total fires for this clause (0 = unlimited)
//
// Examples: "launch:p=0.01:seed=7", "h2d:after=3",
//           "shard:at=1:after=1" (kill device 1's first shard attempt).
//
// Determinism: the p draw hashes (seed, site, per-site check ordinal)
// through splitmix64 — no global RNG stream, so concurrent checks at
// different sites never perturb each other, and the same plan over the
// same workload fires at the same ordinals every run. (Check *ordinals*
// at one site can interleave differently across threads; soak tests
// therefore assert recovery invariants, not exact fire positions.)
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "rt/status.hpp"

namespace snp::rt {

/// Named injection sites. Each maps to the ErrorCode a real failure at
/// that point would produce (site_code()).
enum class FaultSite : std::uint8_t {
  kAlloc = 0,  ///< cl::Context::create_buffer
  kH2d,        ///< cl::CommandQueue::enqueue_write
  kLaunch,     ///< cl::CommandQueue::enqueue_kernel
  kReadback,   ///< cl::CommandQueue::enqueue_read
  kPool,       ///< core pipeline pack/execute/drain task bodies
  kIo,         ///< io readers (formats / packed / plink / vcf)
  kShard,      ///< multi-GPU per-shard pipeline
  kTimeout,    ///< retry watchdog sampling point
};
inline constexpr int kFaultSiteCount = 8;

[[nodiscard]] std::string_view site_name(FaultSite site);
[[nodiscard]] ErrorCode site_code(FaultSite site);

/// One parsed clause of a fault plan.
struct FaultClause {
  FaultSite site = FaultSite::kLaunch;
  double p = 0.0;            ///< per-check fire probability
  std::uint64_t seed = 0;    ///< seed for the p draw
  std::uint64_t after = 0;   ///< fire on exactly the Nth check (1-based)
  std::int64_t at = -1;      ///< index filter (-1 = any)
  std::uint64_t count = 0;   ///< max fires (0 = unlimited)
};

/// A parsed `--inject-faults` / SNPCMP_FAULTS specification.
struct FaultPlan {
  std::vector<FaultClause> clauses;

  [[nodiscard]] bool empty() const { return clauses.empty(); }
  /// Parses the grammar above; throws rt::Error(kInternal) with a
  /// position-bearing message on malformed input.
  [[nodiscard]] static FaultPlan parse(std::string_view spec);
};

/// Process-wide injection engine. Disarmed (default) checks are a single
/// relaxed atomic load — the happy path stays free. Arming installs a
/// plan; every check() walks the matching clauses under a small lock
/// (injection runs are diagnostic runs; clarity beats contention here).
class FaultInjector {
 public:
  /// The process-wide injector. First access arms it from SNPCMP_FAULTS
  /// if that env var is set (a malformed value warns on stderr and is
  /// ignored rather than poisoning the run).
  static FaultInjector& global();

  /// Installs `plan` (replacing any current one) and resets all per-site
  /// counters. An empty plan disarms.
  void arm(FaultPlan plan);
  void disarm() { arm(FaultPlan{}); }
  [[nodiscard]] bool armed() const {
    return armed_.load(std::memory_order_relaxed);
  }

  /// Asks whether site should fail now. `index` is the site's operand
  /// identity (chunk index, device id, ...) for `at=` filtering.
  /// Returns the synthesized failure Status (with injected=true and the
  /// site's ErrorCode) or nullopt. Bumps rt.faults_injected on fire.
  [[nodiscard]] std::optional<Status> check(FaultSite site,
                                            std::int64_t index = -1);

  /// Total fires since the last arm()/reset (for tests and reports).
  [[nodiscard]] std::uint64_t fires() const;

 private:
  struct ClauseState {
    FaultClause clause;
    std::uint64_t checks = 0;
    std::uint64_t fires = 0;
  };

  std::atomic<bool> armed_{false};
  mutable std::mutex mu_;
  std::vector<ClauseState> state_;
  // Per-site check ordinals, shared across clauses so `after=` counts
  // real site activity, not clause bookkeeping.
  std::uint64_t site_checks_[kFaultSiteCount] = {};
};

/// Convenience: consults the global injector and throws rt::Error if the
/// site fires. Place at the very top of an operation, before any state
/// mutation, so a retry replays cleanly.
inline void maybe_inject(FaultSite site, std::int64_t index = -1) {
  auto& inj = FaultInjector::global();
  if (!inj.armed()) return;
  if (auto st = inj.check(site, index)) throw Error(std::move(*st));
}

/// RAII plan installation for tests and CLI commands: arms on
/// construction, restores the disarmed state on destruction so plans
/// never leak across sequentially-run commands in one process.
class ScopedFaultPlan {
 public:
  explicit ScopedFaultPlan(FaultPlan plan) {
    FaultInjector::global().arm(std::move(plan));
  }
  explicit ScopedFaultPlan(std::string_view spec)
      : ScopedFaultPlan(FaultPlan::parse(spec)) {}
  ~ScopedFaultPlan() { FaultInjector::global().disarm(); }
  ScopedFaultPlan(const ScopedFaultPlan&) = delete;
  ScopedFaultPlan& operator=(const ScopedFaultPlan&) = delete;
};

}  // namespace snp::rt
