// BLIS-like blocked CPU engine for SNP comparisons (paper Section III).
//
// Alachiotis et al. [11] showed that LD reduces to a matrix-matrix multiply
// whose micro-kernel replaces multiply-add with (logical-op, POPCNT, add)
// on 64-bit words, and that only the BLIS micro-kernel needs to change to
// reach 80-90 % of the CPU's popcount-throughput peak. This module is that
// algorithm: the classic five-loop blocking (n_c -> k_c -> m_c -> n_r ->
// m_r) with packed A/B panels and a register-blocked micro-kernel,
// parallelized with OpenMP. It is both the paper's CPU baseline and the
// ground-truth engine the simulated GPU kernels are verified against.
#pragma once

#include <cstddef>

#include "bits/bitmatrix.hpp"
#include "bits/compare.hpp"

namespace snp::exec {
class ThreadPool;
}

namespace snp::cpu {

/// Cache-blocking parameters in 64-bit words / rows. Defaults target a
/// generic modern x86 core (32 KiB L1D, 256 KiB-1 MiB L2).
struct CpuBlocking {
  std::size_t m_c = 64;    ///< A-panel rows per L2 block
  std::size_t k_c = 256;   ///< panel depth in 64-bit words (2 KiB strips)
  std::size_t n_c = 2048;  ///< B columns per L3 block
  static constexpr std::size_t m_r = 4;  ///< micro-tile rows
  static constexpr std::size_t n_r = 4;  ///< micro-tile cols

  [[nodiscard]] bool valid() const {
    return m_c >= m_r && n_c >= n_r && k_c > 0 && m_c % m_r == 0 &&
           n_c % n_r == 0;
  }
};

/// gamma[i,j] = sum_k popcount(op(A[i,k], B[j,k])), blocked and packed.
/// A is (M x K bits), B is (N x K bits), both row-major over K.
[[nodiscard]] bits::CountMatrix compare_blocked(
    const bits::BitMatrix& a, const bits::BitMatrix& b, bits::Comparison op,
    const CpuBlocking& blocking = {});

/// Asynchronous variant of compare_blocked: the same five-loop blocking
/// expressed as a task graph on `pool` instead of OpenMP pragmas. A and B
/// panels are packed by dedicated tasks (at most two k_c panel generations
/// in flight — double-buffered packing, so packing for panel p+1 overlaps
/// the micro-kernels of panel p), and each m_c x n_c macro-tile runs as
/// one task whose k_c accumulation chain preserves the serial order.
/// Results are bit-identical to compare_blocked for any pool size
/// (including an inline 0-thread pool).
[[nodiscard]] bits::CountMatrix compare_blocked_async(
    const bits::BitMatrix& a, const bits::BitMatrix& b, bits::Comparison op,
    exec::ThreadPool& pool, const CpuBlocking& blocking = {});

/// Convenience single-call LD (Eq. 1): C = (A & A)^T-style self-comparison,
/// i.e. compare_blocked(a, a, kAnd).
[[nodiscard]] bits::CountMatrix ld_counts(const bits::BitMatrix& a,
                                          const CpuBlocking& blocking = {});

}  // namespace snp::cpu
