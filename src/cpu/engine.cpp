#include "cpu/engine.hpp"

#include <algorithm>
#include <chrono>
#include <memory>
#include <stdexcept>
#include <vector>

#include "exec/task_graph.hpp"
#include "exec/thread_pool.hpp"
#include "obs/obs.hpp"

namespace snp::cpu {

namespace {

using bits::Comparison;
using bits::Word64;

/// Packed A panel: m_r-row strips, k-major within a strip, so the
/// micro-kernel streams it with unit stride.
void pack_a(const bits::BitMatrix& a, std::size_t row0, std::size_t rows,
            std::size_t k0, std::size_t kw, std::vector<Word64>& out) {
  constexpr std::size_t m_r = CpuBlocking::m_r;
  const std::size_t strips = bits::ceil_div(rows, m_r);
  out.assign(strips * kw * m_r, 0);
  SNP_OBS_COUNT("cpu.pack_a.words", out.size());
  for (std::size_t s = 0; s < strips; ++s) {
    Word64* dst = out.data() + s * kw * m_r;
    for (std::size_t k = 0; k < kw; ++k) {
      for (std::size_t r = 0; r < m_r; ++r) {
        const std::size_t row = row0 + s * m_r + r;
        dst[k * m_r + r] =
            row < row0 + rows ? a.row64(row)[k0 + k] : Word64{0};
      }
    }
  }
}

/// Packed B panel: n_r-column strips, k-major within a strip.
void pack_b(const bits::BitMatrix& b, std::size_t col0, std::size_t cols,
            std::size_t k0, std::size_t kw, std::vector<Word64>& out) {
  constexpr std::size_t n_r = CpuBlocking::n_r;
  const std::size_t strips = bits::ceil_div(cols, n_r);
  out.assign(strips * kw * n_r, 0);
  SNP_OBS_COUNT("cpu.pack_b.words", out.size());
  for (std::size_t s = 0; s < strips; ++s) {
    Word64* dst = out.data() + s * kw * n_r;
    for (std::size_t k = 0; k < kw; ++k) {
      for (std::size_t c = 0; c < n_r; ++c) {
        const std::size_t col = col0 + s * n_r + c;
        dst[k * n_r + c] =
            col < col0 + cols ? b.row64(col)[k0 + k] : Word64{0};
      }
    }
  }
}

/// The micro-kernel: an m_r x n_r register block accumulating
/// popcount(op(a, b)) over a k_c-deep packed panel pair. `op` is a template
/// parameter so the logical operation is branch-free in the inner loop —
/// the same specialization trick the paper applies inside BLIS.
template <Comparison op>
void micro_kernel(const Word64* a_strip, const Word64* b_strip,
                  std::size_t kw, std::uint32_t* c, std::size_t ldc) {
  constexpr std::size_t m_r = CpuBlocking::m_r;
  constexpr std::size_t n_r = CpuBlocking::n_r;
  std::uint32_t acc[m_r][n_r] = {};
  for (std::size_t k = 0; k < kw; ++k) {
    const Word64* av = a_strip + k * m_r;
    const Word64* bv = b_strip + k * n_r;
    for (std::size_t i = 0; i < m_r; ++i) {
      for (std::size_t j = 0; j < n_r; ++j) {
        acc[i][j] += static_cast<std::uint32_t>(
            bits::popcount(bits::apply(op, av[i], bv[j])));
      }
    }
  }
  for (std::size_t i = 0; i < m_r; ++i) {
    for (std::size_t j = 0; j < n_r; ++j) {
      c[i * ldc + j] += acc[i][j];
    }
  }
}

using MicroKernelFn = void (*)(const Word64*, const Word64*, std::size_t,
                               std::uint32_t*, std::size_t);

MicroKernelFn select_kernel(Comparison op) {
  switch (op) {
    case Comparison::kAnd:
      return &micro_kernel<Comparison::kAnd>;
    case Comparison::kXor:
      return &micro_kernel<Comparison::kXor>;
    case Comparison::kAndNot:
      return &micro_kernel<Comparison::kAndNot>;
  }
  throw std::invalid_argument("compare_blocked: unknown comparison");
}

/// Loops 2 (n_r) and 1 (m_r) around the micro-kernel for one packed
/// m_c x n_c macro-tile. Shared verbatim by the OpenMP and task-graph
/// paths so their accumulation into C is instruction-identical.
void run_macro_tile(MicroKernelFn kernel, const Word64* a_packed,
                    const Word64* b_packed, std::size_t ic, std::size_t mc,
                    std::size_t jc, std::size_t nc, std::size_t kw,
                    std::size_t m, std::size_t n, std::uint32_t* cdata,
                    std::size_t ldc) {
  constexpr std::size_t m_r = CpuBlocking::m_r;
  constexpr std::size_t n_r = CpuBlocking::n_r;
  const std::size_t col_strips = bits::ceil_div(nc, n_r);
  const std::size_t row_strips = bits::ceil_div(mc, m_r);
  SNP_OBS_COUNT("cpu.macro_tiles", 1);
  // Padded micro-tile work, in 64-bit word-ops (edge strips included —
  // the micro-kernel always runs full m_r x n_r registers).
  SNP_OBS_COUNT("cpu.wordops",
                row_strips * m_r * col_strips * n_r * kw);
  std::uint32_t edge[m_r * n_r];
  for (std::size_t js = 0; js < col_strips; ++js) {
    const Word64* b_strip = b_packed + js * kw * n_r;
    for (std::size_t is = 0; is < row_strips; ++is) {
      const Word64* a_strip = a_packed + is * kw * m_r;
      const std::size_t ci = ic + is * m_r;
      const std::size_t cj = jc + js * n_r;
      const bool interior = ci + m_r <= m && cj + n_r <= n;
      if (interior) {
        kernel(a_strip, b_strip, kw, cdata + ci * ldc + cj, ldc);
      } else {
        std::fill(edge, edge + m_r * n_r, 0u);
        kernel(a_strip, b_strip, kw, edge, n_r);
        for (std::size_t i = 0; i < m_r && ci + i < m; ++i) {
          for (std::size_t j = 0; j < n_r && cj + j < n; ++j) {
            cdata[(ci + i) * ldc + cj + j] += edge[i * n_r + j];
          }
        }
      }
    }
  }
}

}  // namespace

bits::CountMatrix compare_blocked(const bits::BitMatrix& a,
                                  const bits::BitMatrix& b, Comparison op,
                                  const CpuBlocking& blocking) {
  if (a.bit_cols() != b.bit_cols()) {
    throw std::invalid_argument(
        "compare_blocked: operands must share the K dimension");
  }
  if (!blocking.valid()) {
    throw std::invalid_argument("compare_blocked: invalid blocking");
  }
  SNP_OBS_SPAN("cpu.compare_blocked");
  const MicroKernelFn kernel = select_kernel(op);

  const std::size_t m = a.rows();
  const std::size_t n = b.rows();
  const std::size_t k_words = bits::ceil_div(a.bit_cols(),
                                             bits::kBitsPerWord64);
  bits::CountMatrix c(m, n);
  if (m == 0 || n == 0 || k_words == 0) {
    return c;
  }
  // Edge-safe C staging: micro-tiles on the fringe write here first.
  const std::size_t ldc = n;
  std::uint32_t* cdata = c.raw().data();

  // Loop 5 (n_c) and loop 4 (k_c) around the macro-kernel.
  for (std::size_t jc = 0; jc < n; jc += blocking.n_c) {
    const std::size_t nc = std::min(blocking.n_c, n - jc);
    for (std::size_t pc = 0; pc < k_words; pc += blocking.k_c) {
      const std::size_t kw = std::min(blocking.k_c, k_words - pc);
      std::vector<Word64> b_packed;
      pack_b(b, jc, nc, pc, kw, b_packed);

      // Loop 3 (m_c): parallel across A panels; each iteration owns a
      // disjoint row block of C, so no synchronization is needed.
#pragma omp parallel for schedule(dynamic) default(none) \
    shared(a, b_packed, cdata, kernel) \
    firstprivate(m, n, jc, nc, pc, kw, ldc, blocking)
      for (std::size_t ic = 0; ic < m; ic += blocking.m_c) {
        const std::size_t mc = std::min(blocking.m_c, m - ic);
        std::vector<Word64> a_packed;
        pack_a(a, ic, mc, pc, kw, a_packed);
        run_macro_tile(kernel, a_packed.data(), b_packed.data(), ic, mc,
                       jc, nc, kw, m, n, cdata, ldc);
      }
    }
  }
  return c;
}

bits::CountMatrix compare_blocked_async(const bits::BitMatrix& a,
                                        const bits::BitMatrix& b,
                                        Comparison op,
                                        exec::ThreadPool& pool,
                                        const CpuBlocking& blocking) {
  if (a.bit_cols() != b.bit_cols()) {
    throw std::invalid_argument(
        "compare_blocked_async: operands must share the K dimension");
  }
  if (!blocking.valid()) {
    throw std::invalid_argument("compare_blocked_async: invalid blocking");
  }
  SNP_OBS_SPAN("cpu.compare_blocked_async");
  const MicroKernelFn kernel = select_kernel(op);

  const std::size_t m = a.rows();
  const std::size_t n = b.rows();
  const std::size_t k_words =
      bits::ceil_div(a.bit_cols(), bits::kBitsPerWord64);
  bits::CountMatrix c(m, n);
  if (m == 0 || n == 0 || k_words == 0) {
    return c;
  }
  const std::size_t ldc = n;
  std::uint32_t* cdata = c.raw().data();

  const std::size_t m_blocks = bits::ceil_div(m, blocking.m_c);
  const std::size_t n_blocks = bits::ceil_div(n, blocking.n_c);

  // Two panel generations (k_c strips) may be in flight at once: packing
  // for generation g+1 overlaps the macro-tile compute of generation g,
  // and the generation-complete marker frees its panels before releasing
  // the slot — so peak packed memory is bounded at two generations.
  constexpr std::size_t kPanelGenerations = 2;
  exec::Semaphore generations(kPanelGenerations);
  std::vector<std::vector<Word64>> a_store[kPanelGenerations];
  std::vector<std::vector<Word64>> b_store[kPanelGenerations];
  // Last compute task per (m, n) macro-tile: each tile's k_c accumulation
  // chain runs in the serial panel order, so C is bit-identical to
  // compare_blocked regardless of pool size.
  std::vector<exec::TaskGraph::TaskId> tile_chain(m_blocks * n_blocks);
  std::vector<bool> tile_started(m_blocks * n_blocks, false);

  exec::TaskGraph graph(pool);
  std::size_t generation = 0;
  for (std::size_t pc = 0; pc < k_words;
       pc += blocking.k_c, ++generation) {
    const std::size_t kw = std::min(blocking.k_c, k_words - pc);
    const std::size_t slot = generation % kPanelGenerations;
    // Failure-aware acquire: if any task threw, the marker that releases
    // this slot may be skipped — stop producing and let graph.wait()
    // rethrow instead of deadlocking.
    bool acquired = false;
    while (!(acquired =
                 generations.acquire_for(std::chrono::milliseconds(20)))) {
      if (graph.failed()) {
        break;
      }
    }
    if (!acquired) {
      break;
    }
    a_store[slot].assign(m_blocks, {});
    b_store[slot].assign(n_blocks, {});

    std::vector<exec::TaskGraph::TaskId> a_packs(m_blocks);
    std::vector<exec::TaskGraph::TaskId> b_packs(n_blocks);
    for (std::size_t ib = 0; ib < m_blocks; ++ib) {
      const std::size_t ic = ib * blocking.m_c;
      const std::size_t mc = std::min(blocking.m_c, m - ic);
      auto* dst = &a_store[slot][ib];
      a_packs[ib] = graph.add(
          [&a, ic, mc, pc, kw, dst] { pack_a(a, ic, mc, pc, kw, *dst); });
    }
    for (std::size_t jb = 0; jb < n_blocks; ++jb) {
      const std::size_t jc = jb * blocking.n_c;
      const std::size_t nc = std::min(blocking.n_c, n - jc);
      auto* dst = &b_store[slot][jb];
      b_packs[jb] = graph.add(
          [&b, jc, nc, pc, kw, dst] { pack_b(b, jc, nc, pc, kw, *dst); });
    }

    std::vector<exec::TaskGraph::TaskId> computes;
    computes.reserve(m_blocks * n_blocks);
    for (std::size_t jb = 0; jb < n_blocks; ++jb) {
      const std::size_t jc = jb * blocking.n_c;
      const std::size_t nc = std::min(blocking.n_c, n - jc);
      for (std::size_t ib = 0; ib < m_blocks; ++ib) {
        const std::size_t ic = ib * blocking.m_c;
        const std::size_t mc = std::min(blocking.m_c, m - ic);
        const std::size_t tile = jb * m_blocks + ib;
        std::vector<exec::TaskGraph::TaskId> deps{a_packs[ib],
                                                  b_packs[jb]};
        if (tile_started[tile]) {
          deps.push_back(tile_chain[tile]);
        }
        const auto* a_panel = &a_store[slot][ib];
        const auto* b_panel = &b_store[slot][jb];
        tile_chain[tile] = graph.add(
            [kernel, a_panel, b_panel, ic, mc, jc, nc, kw, m, n, cdata,
             ldc] {
              run_macro_tile(kernel, a_panel->data(), b_panel->data(), ic,
                             mc, jc, nc, kw, m, n, cdata, ldc);
            },
            deps);
        tile_started[tile] = true;
        computes.push_back(tile_chain[tile]);
      }
    }
    // Generation marker: frees this generation's panels and opens the slot
    // for packing two strips ahead.
    graph.add(
        [&a_store, &b_store, slot, &generations] {
          a_store[slot].clear();
          b_store[slot].clear();
          generations.release();
        },
        computes);
  }
  graph.wait();
  return c;
}

bits::CountMatrix ld_counts(const bits::BitMatrix& a,
                            const CpuBlocking& blocking) {
  return compare_blocked(a, a, Comparison::kAnd, blocking);
}

}  // namespace snp::cpu
