// snp::svc — batched resident-database query service.
//
// The FastID workloads (Eqs. 2-3) are shaped exactly like a high-QPS
// lookup service: a tiny query matrix against a ~20M-profile database
// that never changes between requests. ServiceEngine keeps that database
// loaded and packed once (pre-negated per Eq. 3 when serving AND-NOT),
// accepts independent client queries through a thread-safe submission
// API, and coalesces queries that arrive close together into one batched
// A-operand per core::compare launch — the paper's own insight that
// kernel launches only amortize when the A operand is wide enough,
// applied to serving. Samsi et al.'s GPU DNA-mixture pipeline (PAPERS.md)
// motivates the same serve-many-small-queries-against-one-big-DB shape.
//
// Contracts the conformance suite (tests/test_service.cpp) pins:
//  * Batching is invisible: every result row is bit-identical to a
//    serial per-query core::compare run, for any batch width, arrival
//    order, or client thread count.
//  * Exactly-once: every accepted request resolves its future exactly
//    once — with a result row or with the rt::Error that killed its
//    batch. A failed batch never poisons later batches (the engine
//    clears the exec::ThreadPool's sticky error after scattering it).
//  * Admission control: a bounded pending queue sheds (kReject ->
//    rt::Error(kOverload)) or backpressures (kBlock) before the service
//    falls over; shed requests are counted, never half-processed.
//  * Cache coherence: the result cache is keyed by (query hash, op,
//    DB epoch); update_database() bumps the epoch, so a stale entry can
//    never be served after a swap.
//
// SLO telemetry: per-request latency (p50/p99), batch width, queue depth
// and cache hit rates are published through the obs registry ("svc.*")
// and summarized by stats() for the CLI "service:" report block. When
// ServiceConfig::slo sets a latency objective, an obs::SloMonitor
// evaluates rolling-window burn rates over completions and trips a
// flight-recorder dump on breach (see slo() / docs/observability.md).
//
// Request tracing: submit() allocates a process-unique trace id per
// request (obs::TraceContext). The dispatcher installs the batch root's
// context around batch execution so every span, chunk flight record and
// fault event downstream carries the originating request's id, and the
// merged Perfetto trace links submit -> batch -> chunks -> resolution
// with flow arrows.
#pragma once

#include <cstdint>
#include <future>
#include <iosfwd>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "bits/bitmatrix.hpp"
#include "bits/compare.hpp"
#include "core/snpcmp.hpp"
#include "obs/cost.hpp"
#include "obs/slo.hpp"
#include "rt/recovery.hpp"

namespace snp::exec {
class ThreadPool;
}  // namespace snp::exec

namespace snp::svc {

/// What to do with a submit() that finds the pending queue full.
enum class AdmissionPolicy : std::uint8_t {
  kReject = 0,  ///< shed: submit() throws rt::Error(kOverload)
  kBlock,       ///< backpressure: submit() blocks until space frees up
};

[[nodiscard]] std::string_view to_string(AdmissionPolicy policy);
/// Parses "reject|block"; nullopt on anything else.
[[nodiscard]] std::optional<AdmissionPolicy> parse_admission_policy(
    std::string_view text);

struct ServiceConfig {
  /// "cpu" or a simulated GPU name ("gtx980", "titanv", "vega64").
  std::string device = "titanv";
  /// The comparison every request runs (one engine serves one workload).
  bits::Comparison op = bits::Comparison::kXor;
  /// AND-NOT only: store the database negated once at load and serve AND
  /// (the Eq. 3 simplification) — results stay bit-identical to AND-NOT
  /// against the raw database.
  bool pre_negate = false;

  /// Coalescing: the dispatcher batches up to this many pending queries
  /// into one A-operand per compare launch (the paper's batch width).
  std::size_t max_batch_rows = 32;
  /// After picking up the first query of a batch, keep the batch open
  /// this long for more arrivals (0 = dispatch whatever is already
  /// queued). Scripted/CI runs use 0 so batch formation is
  /// deterministic; the soak and bench explore nonzero windows.
  double coalesce_window_s = 0.0;

  /// Admission control: pending (not yet batched) requests are bounded.
  std::size_t max_queue = 256;
  AdmissionPolicy admission = AdmissionPolicy::kReject;

  /// Result cache keyed by (query-row hash, op, DB epoch); 0 disables.
  std::size_t cache_capacity = 1024;

  /// Default per-request recovery policy (a request class may override
  /// at submit()).
  rt::RecoveryOptions recovery;

  /// Host worker threads for each batch's chunk pipeline
  /// (ComputeOptions::threads); batches themselves execute one at a
  /// time, in submission order, for deterministic replay.
  std::size_t compute_threads = 0;

  /// Construct paused: the dispatcher holds off until resume() — used by
  /// the scripted CLI driver and the admission-control tests to make
  /// batch formation deterministic.
  bool start_paused = false;

  /// Latency SLO for the burn-rate monitor. objective_s == 0 (the
  /// default) disables burn evaluation; the exemplar histogram behind
  /// slo() still accumulates so the report's approximate percentiles
  /// work without an objective.
  obs::SloOptions slo;

  /// Per-device circuit breaker for batch execution (failure_threshold
  /// = 0 disables): consecutive GPU failures open the circuit and
  /// subsequent batches fast-fail to the recovery ladder without paying
  /// another doomed device attempt (see rt::CircuitBreaker).
  rt::BreakerOptions breaker;

  /// Per-request-class retry budget: capacity of the token bucket every
  /// retry of that class must draw from (0 = unbounded, the default).
  /// Classes get independent buckets; a dry bucket turns retryable
  /// faults into immediate kExhausted fast-fails. A RecoveryOptions
  /// passed at submit() with its own budget wins over this default.
  double retry_budget = 0.0;
  /// Tokens credited back per successful operation (fractions
  /// accumulate; ordinal-driven, never wall-clock).
  double retry_budget_refill = 0.1;

  /// Brown-out: when the SLO burn-rate monitor trips, the dispatcher
  /// drops the coalescing window to zero and admission sheds every
  /// request whose class is <= this bound (lowest classes first, with
  /// kOverload) until both burn rates fall back under the trip
  /// threshold. The default (0) sheds only class <= 0 — the designated
  /// best-effort tier — while the default request class (1) stays
  /// admitted.
  int brownout_class_max = 0;
};

/// Per-submission options (the richer submit() overload).
struct SubmitOptions {
  /// Recovery-policy override for this request's class (engine default
  /// when unset). Requests of different classes never share a batch.
  std::optional<rt::RecoveryOptions> recovery;
  /// End-to-end deadline measured from submit(), in milliseconds.
  /// 0 = no deadline. Negative = already expired at submission: the
  /// submit throws rt::Error(kDeadline) immediately (counted as shed).
  /// A positive deadline is never checked at admission — expiry is
  /// enforced at batch formation (expired requests are shed with
  /// kDeadline before any launch), at chunk boundaries inside the
  /// compare pipeline via rt::CancelToken, and at delivery (late
  /// results are flagged, never dropped).
  double deadline_ms = 0.0;
  /// Request class: batching partition and the brown-out shed order
  /// (lowest sheds first). Default 1; class <= brownout_class_max is
  /// the best-effort tier.
  int request_class = 1;
  /// When non-null, receives the request's trace id as soon as it is
  /// allocated — before any possible throw.
  std::uint64_t* trace_out = nullptr;
};

/// One resolved query.
struct QueryResult {
  /// gamma row: result.row[j] = popc(op(query, db[j])) for every
  /// database profile j (Eqs. 1-3 restricted to one query row).
  std::vector<std::uint32_t> row;
  bool cache_hit = false;
  /// Batch this request rode in (0 for cache hits) and its width.
  std::uint64_t batch_id = 0;
  std::size_t batch_rows = 0;
  /// DB epoch the result was computed against.
  std::uint64_t epoch = 0;
  /// submit() -> delivery wall time.
  double latency_s = 0.0;
  /// True when the batch finished on the CPU degrade rung.
  bool degraded = false;
  /// True when the request carried a deadline and the result was
  /// delivered after it passed (late results are delivered and flagged,
  /// never silently dropped).
  bool deadline_expired = false;
  /// The request's process-unique trace id (allocated at submit();
  /// never 0 for an accepted request). The same id tags the request's
  /// spans, flight records and fault events.
  std::uint64_t trace_id = 0;
  /// What this request cost, attributed from its batch by gamma-row
  /// ownership (obs::CostLedger): exact integer shares of device-sim
  /// time, H2D/D2H bytes and popcounted words that sum bit-identically
  /// to the batch totals, plus measured queue-wait/service wall time.
  /// All-zero under SNPCMP_OBS=OFF or when attribution is disabled.
  obs::RequestCost cost;
};

/// Point-in-time service telemetry (also published as "svc.*" metrics).
struct ServiceStats {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;    ///< requests whose batch errored
  std::uint64_t rejected = 0;  ///< admission sheds (kOverload)
  std::uint64_t batches = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t fault_events = 0;  ///< recovery incidents across batches
  std::uint64_t degraded_batches = 0;
  std::size_t max_batch_rows = 0;
  double mean_batch_rows = 0.0;
  std::size_t peak_queue_depth = 0;
  double p50_latency_s = 0.0;
  double p99_latency_s = 0.0;
  double max_latency_s = 0.0;
  /// Queue-wait / service-time decomposition of the latency above
  /// (wait = enqueue -> batch formation, service = formation ->
  /// resolution; cache hits count as wait 0). Published as the
  /// svc.queue.wait_seconds / svc.service.time_seconds histograms too.
  double mean_queue_wait_s = 0.0;
  double p99_queue_wait_s = 0.0;
  double mean_service_time_s = 0.0;
  double p99_service_time_s = 0.0;
  std::uint64_t epoch = 1;
  /// SLO monitor readout (all zero when obs is compiled out or no
  /// requests have completed).
  std::uint64_t slo_breaches = 0;  ///< completions over the objective
  std::uint64_t slo_trips = 0;     ///< burn-rate trigger edges
  double slo_burn_fast = 0.0;
  double slo_burn_slow = 0.0;
  /// Deadline accounting (docs/robustness.md "Request lifecycle"):
  /// shed = expired before any launch (admission or batch formation),
  /// expired = completed but delivered late, met = completed in time.
  /// Only requests that carried a deadline are counted.
  std::uint64_t deadline_shed = 0;
  std::uint64_t deadline_expired = 0;
  std::uint64_t deadline_met = 0;
  /// Brown-out accounting: trigger edges entered and requests shed by
  /// class while browned out.
  std::uint64_t brownout_entries = 0;
  std::uint64_t brownout_shed = 0;
  bool brownout_active = false;
};

/// Point-in-time SLO report from the engine's burn-rate monitor. The
/// percentiles are honest bucket upper bounds (obs::SloMonitor
/// ::percentile_le): NaN when nothing was recorded, +inf when the
/// quantile fell in the overflow bucket; render with a '~' marker.
struct SloReport {
  double objective_s = 0.0;  ///< 0 = burn evaluation disabled
  obs::SloSnapshot state;    ///< totals, breaches, burn rates, trips
  double p50_le_s = 0.0;
  double p99_le_s = 0.0;
  /// Per-bucket exemplars parallel to bounds (plus overflow): the last
  /// (latency, trace id) seen in each latency bucket.
  std::vector<double> bounds;
  std::vector<std::uint64_t> bucket_counts;
  std::vector<std::optional<obs::SloExemplar>> exemplars;
  /// Exemplar from the highest populated bucket — the trace id to chase
  /// when asking "which request was the outlier?".
  std::optional<obs::SloExemplar> worst;
};

/// Long-running, in-process query service over one resident database.
/// Thread-safe: submit()/stats()/update_database() may be called from
/// any number of client threads; a single dispatcher thread forms
/// batches and executes them in submission order on an exec::ThreadPool.
class ServiceEngine {
 public:
  /// Loads and packs `database` once (negated here when config.op is
  /// AND-NOT and config.pre_negate is set). Throws std::invalid_argument
  /// on an empty database or unknown device.
  ServiceEngine(bits::BitMatrix database, ServiceConfig config);
  /// Drains: every accepted request is resolved before destruction
  /// returns (shutdown never drops a future).
  ~ServiceEngine();
  ServiceEngine(const ServiceEngine&) = delete;
  ServiceEngine& operator=(const ServiceEngine&) = delete;

  /// Submits one query profile (a 1-row BitMatrix with the database's
  /// bit_cols). Returns a future resolved exactly once — with the gamma
  /// row, or with the rt::Error that killed this request's batch.
  /// Throws rt::Error(kOverload) when the queue is full under kReject;
  /// blocks under kBlock; throws std::invalid_argument on shape
  /// mismatch. `recovery` overrides the engine default for this
  /// request's class; requests of different classes never share a batch.
  /// `trace_out`, when non-null, receives the request's trace id as soon
  /// as it is allocated — before any possible throw — so callers can
  /// correlate even shed/failed submissions with the flight recorder.
  [[nodiscard]] std::future<QueryResult> submit(
      const bits::BitMatrix& query,
      const std::optional<rt::RecoveryOptions>& recovery = std::nullopt,
      std::uint64_t* trace_out = nullptr);

  /// Full-options submit: adds an end-to-end deadline and a request
  /// class (see SubmitOptions). Additionally throws rt::Error(kDeadline)
  /// for an already-expired deadline or when a kBlock admission wait
  /// outlives the deadline, and rt::Error(kOverload) when brown-out
  /// sheds the request's class.
  [[nodiscard]] std::future<QueryResult> submit(const bits::BitMatrix& query,
                                               const SubmitOptions& options);

  /// Atomically swaps the resident database and bumps the epoch; every
  /// cached result is invalidated (the cache key carries the epoch, and
  /// the store is purged). In-flight batches finish against the epoch
  /// they were formed under. The new database must have the same
  /// bit_cols as the current one.
  void update_database(bits::BitMatrix database);
  [[nodiscard]] std::uint64_t epoch() const;

  /// Blocks until every request accepted so far is resolved. (Requests
  /// submitted concurrently with drain() may or may not be covered.)
  void drain();

  /// Dispatcher gate for deterministic batch formation: while paused,
  /// submissions queue up but no batch is formed. resume() releases the
  /// backlog — the dispatcher then coalesces it FIFO into
  /// max_batch_rows-wide batches.
  void pause();
  void resume();

  [[nodiscard]] ServiceStats stats() const;
  /// Snapshot of the engine's cost ledger (per-batch totals + exact
  /// per-request shares; see obs::CostLedger). Empty under
  /// SNPCMP_OBS=OFF or when attribution is disabled.
  [[nodiscard]] obs::CostSnapshot cost() const;
  /// Writes the ledger's deterministic JSON document (--cost-out).
  void write_cost_json(std::ostream& os) const;
  /// The burn-rate monitor's current state: approximate percentiles,
  /// burn rates, per-bucket exemplars. Cheap (one mutex + histogram
  /// copy); safe to call concurrently with submissions.
  [[nodiscard]] SloReport slo() const;
  [[nodiscard]] const ServiceConfig& config() const;
  /// Database profile count (the gamma row length).
  [[nodiscard]] std::size_t db_rows() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace snp::svc
