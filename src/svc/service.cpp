#include "svc/service.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <unordered_map>
#include <utility>

#include "exec/thread_pool.hpp"
#include "obs/obs.hpp"
#include "rt/status.hpp"

namespace snp::svc {
namespace {

using Clock = std::chrono::steady_clock;

[[nodiscard]] double seconds_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

[[nodiscard]] Context make_context(const std::string& device) {
  if (device == "cpu") return Context::cpu();
  return Context::gpu(device);
}

/// Requests only share a batch when their whole recovery policy matches:
/// one compare launch runs under exactly one policy, so mixing classes
/// would silently upgrade or downgrade somebody's contract. Budgets
/// compare by identity — two requests share a batch only when their
/// retries draw from the same bucket.
[[nodiscard]] bool same_class(const rt::RecoveryOptions& a,
                              const rt::RecoveryOptions& b) {
  return a.policy == b.policy && a.max_attempts == b.max_attempts &&
         a.backoff_base_s == b.backoff_base_s &&
         a.backoff_max_s == b.backoff_max_s &&
         a.op_deadline_s == b.op_deadline_s && a.budget == b.budget;
}

/// FNV-1a over the query's canonical words; op and epoch are folded in so
/// one table serves every (op, epoch) generation.
[[nodiscard]] std::uint64_t cache_hash(std::span<const bits::Word64> words,
                                       bits::Comparison op,
                                       std::uint64_t epoch) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  const auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xffULL;
      h *= 0x100000001b3ULL;
    }
  };
  for (const auto w : words) mix(w);
  mix(static_cast<std::uint64_t>(op));
  mix(epoch);
  return h;
}

[[nodiscard]] double percentile(std::vector<double> sorted, double q) {
  if (sorted.empty()) return 0.0;
  const auto rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(sorted.size())));
  return sorted[std::min(sorted.size(), std::max<std::size_t>(rank, 1)) - 1];
}

}  // namespace

std::string_view to_string(AdmissionPolicy policy) {
  switch (policy) {
    case AdmissionPolicy::kReject:
      return "reject";
    case AdmissionPolicy::kBlock:
      return "block";
  }
  return "?";
}

std::optional<AdmissionPolicy> parse_admission_policy(std::string_view text) {
  if (text == "reject") return AdmissionPolicy::kReject;
  if (text == "block") return AdmissionPolicy::kBlock;
  return std::nullopt;
}

struct ServiceEngine::Impl {
  /// One accepted, not-yet-resolved query.
  struct Request {
    std::vector<bits::Word64> words;  ///< canonical (base-stride) query row
    std::uint64_t key = 0;            ///< cache key at admission epoch
    std::uint64_t trace_id = 0;       ///< allocated at submit()
    rt::RecoveryOptions recovery;
    /// End-to-end deadline (absolute, from submit() + deadline_ms).
    /// Checked at batch formation and armed on the batch's CancelToken;
    /// never re-checked at admission for positive budgets.
    bool has_deadline = false;
    Clock::time_point deadline_at;
    /// Batching partition + brown-out shed order (SubmitOptions).
    int request_class = 1;
    Clock::time_point submitted;
    /// When the request entered the pending queue (after any admission
    /// block) — the queue-wait clock starts here, not at submit().
    Clock::time_point enqueued;
    /// Filled at batch formation: enqueued -> formation, the per-request
    /// side of the queue-depth time integral (Little's law).
    std::uint64_t queue_wait_ns = 0;
    std::promise<QueryResult> promise;
  };

  /// A formed batch: the FIFO same-class prefix plus the database
  /// generation it was formed under (in-flight batches finish against
  /// their own epoch even if update_database() lands meanwhile).
  struct Batch {
    std::vector<Request> requests;
    std::shared_ptr<const bits::BitMatrix> db;
    std::uint64_t epoch = 1;
    std::uint64_t id = 0;
  };

  struct CacheEntry {
    std::vector<bits::Word64> words;  ///< stored for exact collision check
    std::uint64_t epoch = 1;
    std::vector<std::uint32_t> row;
  };

  Impl(bits::BitMatrix database, ServiceConfig config)
      : cfg(std::move(config)),
        ctx(make_context(cfg.device)),
        pool(1),
        slo_mon(cfg.slo),
        paused(cfg.start_paused) {
    if (database.empty()) {
      throw std::invalid_argument("svc: database must be non-empty");
    }
    if (cfg.max_batch_rows == 0) {
      throw std::invalid_argument("svc: max_batch_rows must be >= 1");
    }
    effective_op = cfg.op;
    if (cfg.op == bits::Comparison::kAndNot && cfg.pre_negate) {
      // Eq. 3 served as AND against the stored complement — bit-identical
      // to AND-NOT by negation duality (pinned in test_properties).
      database = database.negated();
      effective_op = bits::Comparison::kAnd;
    }
    db = std::make_shared<const bits::BitMatrix>(std::move(database));
    last_queue_change = Clock::now();
    // Published once so the offline analyzer can compute coalescing
    // efficiency (achieved batch width / configured maximum) from a
    // metrics snapshot alone.
    SNP_OBS_GAUGE_SET("svc.config.max_batch_rows", cfg.max_batch_rows);
    dispatcher = std::thread([this] { dispatch_loop(); });
  }

  ~Impl() {
    {
      std::unique_lock lock(mu);
      stop = true;
      paused = false;  // shutdown drains even a paused engine
      cv_work.notify_all();
      cv_space.notify_all();
      // Handshake with kBlock submitters: a thread parked in submit()'s
      // admission wait touches mu/cv_space when it wakes, so the
      // destructor must not tear those down until every blocked
      // submitter has observed stop and left (each resolves its submit
      // with a structured kCancelled — never a deadlock, never a
      // dangling wait). Pinned by the TSan regression test.
      cv_blocked.wait(lock, [&] { return blocked_submitters == 0; });
    }
    dispatcher.join();
  }

  // ---- client side -------------------------------------------------------

  std::future<QueryResult> submit(const bits::BitMatrix& query,
                                  const SubmitOptions& options) {
    const auto submitted = Clock::now();
    // Identity first: the id exists (and reaches the caller) before any
    // admission decision, so even a shed request is chaseable in the
    // flight recorder and the Perfetto flow chain.
    const std::uint64_t trace_id = obs::next_trace_id();
    if (options.trace_out != nullptr) *options.trace_out = trace_id;
    if (query.rows() != 1 || query.bit_cols() != db_bit_cols()) {
      throw std::invalid_argument(
          "svc: query must be a single row with the database's bit_cols");
    }
    SNP_OBS_FLOW_POINT("req.submit", trace_id, 's');
    // Canonicalize to the base stride so clients with padded strides hash
    // and batch identically (padding words are zero by invariant).
    const std::size_t base_words = (query.bit_cols() + 63) / 64;
    const auto src = query.row64(0);
    std::vector<bits::Word64> words(src.begin(),
                                    src.begin() + static_cast<std::ptrdiff_t>(
                                                      base_words));

    const bool has_deadline = options.deadline_ms != 0.0;
    const auto deadline_at =
        submitted + std::chrono::duration_cast<Clock::duration>(
                        std::chrono::duration<double>(
                            options.deadline_ms * 1e-3));

    std::unique_lock lock(mu);
    submitted_count++;
    SNP_OBS_COUNT("svc.requests", 1);

    // Only an already-expired budget (deadline_ms < 0) is checked at
    // admission: the request cannot possibly be served in time, so it
    // sheds before consuming queue space or a cache probe. Positive
    // budgets are deliberately *not* checked here — expiry for them is
    // enforced at batch formation and inside the pipeline, which keeps
    // admission free of wall-clock races and makes formation-time
    // shedding deterministically testable.
    if (options.deadline_ms < 0.0) {
      rejected_count++;
      deadline_shed_count++;
      SNP_OBS_COUNT("svc.deadline.shed", 1);
      SNP_OBS_FLIGHT(obs::FlightKind::kDeadlineShed, trace_id, 0,
                     static_cast<std::int64_t>(pending.size()), 0);
      throw rt::Error(rt::ErrorCode::kDeadline,
                      "request deadline already expired at submission");
    }

    const std::uint64_t key = cache_hash(words, cfg.op, epoch);
    if (cfg.cache_capacity > 0) {
      if (const auto it = cache.find(key);
          it != cache.end() && it->second.epoch == epoch &&
          it->second.words == words) {
        cache_hits++;
        SNP_OBS_COUNT("svc.cache.hits", 1);
        SNP_OBS_FLIGHT(obs::FlightKind::kCacheHit, trace_id, 0,
                       static_cast<std::int64_t>(epoch), 0);
        QueryResult qr;
        qr.row = it->second.row;
        qr.cache_hit = true;
        qr.epoch = epoch;
        qr.trace_id = trace_id;
        const auto now = Clock::now();
        qr.latency_s = seconds_between(submitted, now);
        completed_count++;
        if (has_deadline) {
          // A cache hit resolves inline, so the deadline is met unless
          // the budget was so small it passed during the probe itself.
          qr.deadline_expired = now > deadline_at;
          if (qr.deadline_expired) {
            deadline_expired_count++;
          } else {
            deadline_met_count++;
          }
        }
        latencies.push_back(qr.latency_s);
        // A cache hit never queues: wait 0, the whole latency is service.
        queue_waits.push_back(0.0);
        service_times.push_back(qr.latency_s);
        SNP_OBS_OBSERVE("svc.request_latency_seconds", qr.latency_s);
        SNP_OBS_OBSERVE("svc.queue.wait_seconds", 0.0);
        SNP_OBS_OBSERVE("svc.service.time_seconds", qr.latency_s);
        if constexpr (obs::kEnabled) {
          qr.cost.trace_id = trace_id;
          qr.cost.epoch = epoch;
          qr.cost.cache_hit = true;
          qr.cost.service_ns =
              obs::quantize_cost_ns(qr.latency_s);
          if (obs::CostLedger::attribution_enabled()) {
            ledger.record_cache_hit(qr.cost);
          }
        }
        bool tripped = false;
        if constexpr (obs::kEnabled) {
          tripped = slo_mon.record(qr.latency_s, trace_id);
          if (cfg.slo.objective_s > 0.0 &&
              qr.latency_s > cfg.slo.objective_s) {
            SNP_OBS_COUNT("svc.slo.breaches", 1);
          }
        }
        SNP_OBS_FLIGHT(obs::FlightKind::kResolve, trace_id, 0, 0,
                       static_cast<std::int64_t>(qr.latency_s * 1e6));
        SNP_OBS_FLOW_POINT("req.resolve", trace_id, 'f');
        std::promise<QueryResult> p;
        auto fut = p.get_future();
        p.set_value(std::move(qr));
        lock.unlock();
        if (tripped) on_slo_trip(trace_id);
        return fut;
      }
      cache_misses++;
      SNP_OBS_COUNT("svc.cache.misses", 1);
    }

    // Brown-out shed: while the SLO burn-rate trip is latched, the
    // lowest request classes are turned away at the door (after the
    // cache probe — hits cost nothing and still help the burn recover).
    if (brownout && options.request_class <= cfg.brownout_class_max) {
      rejected_count++;
      brownout_shed_count++;
      SNP_OBS_COUNT("svc.brownout.shed", 1);
      SNP_OBS_FLIGHT(obs::FlightKind::kShed, trace_id, 0,
                     static_cast<std::int64_t>(pending.size()),
                     options.request_class);
      throw rt::Error(rt::ErrorCode::kOverload,
                      "brown-out: shedding request class " +
                          std::to_string(options.request_class) +
                          " until the SLO burn rate recovers");
    }

    // Admission control: the pending queue is the only unbounded-growth
    // surface, so it is the one that is bounded.
    if (pending.size() >= cfg.max_queue) {
      if (cfg.admission == AdmissionPolicy::kReject) {
        rejected_count++;
        SNP_OBS_COUNT("svc.rejected", 1);
        SNP_OBS_FLIGHT(obs::FlightKind::kShed, trace_id, 0,
                       static_cast<std::int64_t>(pending.size()), 0);
        throw rt::Error(rt::ErrorCode::kOverload,
                        "service queue full (" +
                            std::to_string(cfg.max_queue) +
                            " pending); request shed");
      }
      // kBlock backpressure. The destructor handshake (blocked_submitters
      // / cv_blocked) guarantees a blocked submitter either re-acquires
      // the queue or observes stop — never a dangling wait on a dying
      // engine. A deadline bounds the block: waiting past it would hand
      // the dispatcher a request that is already dead on arrival.
      blocked_submitters++;
      bool has_space = true;
      if (has_deadline) {
        has_space = cv_space.wait_until(lock, deadline_at, [&] {
          return stop || pending.size() < cfg.max_queue;
        });
      } else {
        cv_space.wait(lock,
                      [&] { return stop || pending.size() < cfg.max_queue; });
      }
      blocked_submitters--;
      if (blocked_submitters == 0) cv_blocked.notify_all();
      if (stop) {
        throw rt::Error(rt::ErrorCode::kCancelled,
                        "service shut down while request was blocked on "
                        "admission");
      }
      if (!has_space) {
        rejected_count++;
        deadline_shed_count++;
        SNP_OBS_COUNT("svc.deadline.shed", 1);
        SNP_OBS_FLIGHT(obs::FlightKind::kDeadlineShed, trace_id, 0,
                       static_cast<std::int64_t>(pending.size()), 0);
        throw rt::Error(rt::ErrorCode::kDeadline,
                        "request deadline expired while blocked on "
                        "admission");
      }
    }

    Request req;
    req.words = std::move(words);
    req.key = key;
    req.trace_id = trace_id;
    req.recovery = options.recovery.value_or(cfg.recovery);
    req.has_deadline = has_deadline;
    req.deadline_at = deadline_at;
    req.request_class = options.request_class;
    if (cfg.retry_budget > 0.0 && req.recovery.budget == nullptr) {
      // Classes draw from independent buckets; same_class() compares
      // bucket identity, so sharing the class bucket keeps same-class
      // requests batchable.
      auto& bucket = class_budgets[options.request_class];
      if (bucket == nullptr) {
        bucket = std::make_shared<rt::RetryBudget>(cfg.retry_budget,
                                                   cfg.retry_budget_refill);
      }
      req.recovery.budget = bucket;
    }
    req.submitted = submitted;
    req.enqueued = Clock::now();
    auto fut = req.promise.get_future();
    note_queue_transition(req.enqueued);
    pending.push_back(std::move(req));
    peak_queue = std::max(peak_queue, pending.size());
    SNP_OBS_GAUGE_ADD("svc.queue_depth", 1);
    SNP_OBS_FLIGHT(obs::FlightKind::kEnqueue, trace_id, 0,
                   static_cast<std::int64_t>(pending.size()), 0);
    lock.unlock();
    cv_work.notify_one();
    return fut;
  }

  void update_database(bits::BitMatrix database) {
    if (database.empty() || database.bit_cols() != db_bit_cols()) {
      throw std::invalid_argument(
          "svc: replacement database must be non-empty with matching "
          "bit_cols");
    }
    if (cfg.op == bits::Comparison::kAndNot && cfg.pre_negate) {
      database = database.negated();
    }
    auto next = std::make_shared<const bits::BitMatrix>(std::move(database));
    const std::lock_guard lock(mu);
    db = std::move(next);
    epoch++;
    cache.clear();
    cache_fifo.clear();
    SNP_OBS_COUNT("svc.epoch_bumps", 1);
    SNP_OBS_FLIGHT(obs::FlightKind::kEpoch, obs::current_trace().trace_id,
                   0, static_cast<std::int64_t>(epoch),
                   static_cast<std::int64_t>(db->rows()));
  }

  void drain() {
    std::unique_lock lock(mu);
    cv_drain.wait(lock, [&] { return pending.empty() && inflight == 0; });
  }

  void set_paused(bool value) {
    {
      const std::lock_guard lock(mu);
      paused = value;
    }
    if (!value) cv_work.notify_all();
  }

  // ---- dispatcher side ---------------------------------------------------

  void dispatch_loop() {
    for (;;) {
      std::unique_lock lock(mu);
      cv_work.wait(lock,
                   [&] { return stop || (!paused && !pending.empty()); });
      if (pending.empty()) {
        if (stop) return;
        continue;
      }
      // Keep the batch open for the coalescing window (unless it is
      // already full or the engine is shutting down). Brown-out shrinks
      // the window to zero: latency is already burning, so dispatch
      // whatever is queued instead of waiting for width.
      if (cfg.coalesce_window_s > 0.0 && !brownout &&
          pending.size() < cfg.max_batch_rows) {
        const auto deadline =
            Clock::now() + std::chrono::duration_cast<Clock::duration>(
                               std::chrono::duration<double>(
                                   cfg.coalesce_window_s));
        cv_work.wait_until(lock, deadline, [&] {
          return stop || pending.size() >= cfg.max_batch_rows;
        });
      }

      // One formation timestamp for the whole batch: the depth integral
      // accrues the open interval once, and every popped request's
      // queue wait ends at this same instant — so the integral equals
      // the sum of waits identically (the Little's-law cross-check).
      const auto formed = Clock::now();
      note_queue_transition(formed);
      // Deadline gate: sweep the whole pending queue *before* forming a
      // batch, so a request whose budget expired while it waited is
      // resolved with kDeadline here and can never reach a launch —
      // the svc.deadline.shed counter is the proof the acceptance tests
      // check against batch-member trace ids.
      shed_expired_locked(formed);
      if (pending.empty()) {
        lock.unlock();
        cv_space.notify_all();
        cv_drain.notify_all();
        continue;
      }

      auto batch = std::make_shared<Batch>();
      batch->db = db;
      batch->epoch = epoch;
      batch->id = ++batch_counter;
      // FIFO prefix of one recovery class: later same-class arrivals never
      // jump ahead of an earlier different-class request.
      while (!pending.empty() &&
             batch->requests.size() < cfg.max_batch_rows &&
             (batch->requests.empty() ||
              (same_class(batch->requests.front().recovery,
                          pending.front().recovery) &&
               batch->requests.front().request_class ==
                   pending.front().request_class))) {
        Request& head = pending.front();
        head.queue_wait_ns = static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                formed - head.enqueued)
                .count());
        SNP_OBS_OBSERVE("svc.queue.wait_seconds",
                        static_cast<double>(head.queue_wait_ns) * 1e-9);
        batch->requests.push_back(std::move(head));
        pending.pop_front();
        SNP_OBS_GAUGE_SUB("svc.queue_depth", 1);
      }
      inflight = batch->requests.size();
      lock.unlock();
      cv_space.notify_all();

      // Batches run on the pool's sticky-error channel on purpose: this is
      // the path the PR-6 regression test pins. A failed batch scatters
      // its rt::Error to its own futures, the dispatcher swallows the
      // sticky rethrow and clears it — so batch N failing can never
      // poison batch N+1.
      //
      // The batch executes under its root (first) request's trace
      // context: post() snapshots the installed context into the task,
      // the worker re-installs it, and every downstream span / chunk
      // flight record / fault event inherits the id. The other members
      // stay visible through their own per-request flow points.
      {
        obs::TraceContext root{batch->requests.front().trace_id};
        if (batch->requests.front().has_deadline) {
          root.deadline_s = std::max(
              0.0, seconds_between(Clock::now(),
                                   batch->requests.front().deadline_at));
        }
        const obs::ScopedTraceContext root_scope(root);
        pool.post([this, batch] { execute_batch(*batch); });
      }
      try {
        pool.wait_idle();
      } catch (...) {
        // Already delivered to the batch's promises in execute_batch().
      }
      pool.clear_error();

      lock.lock();
      inflight = 0;
      // Brown-out recovery is edge-triggered on batch completion: once
      // both burn windows fall back under the trip threshold, admission
      // re-opens for the shed classes and the coalescing window is
      // restored.
      if (brownout) {
        const auto snap = slo_mon.snapshot();
        if (snap.burn_fast < cfg.slo.breach_burn_rate &&
            snap.burn_slow < cfg.slo.breach_burn_rate) {
          brownout = false;
          SNP_OBS_FLIGHT(obs::FlightKind::kBrownout,
                         obs::current_trace().trace_id, 0, 0,
                         cfg.brownout_class_max);
        }
      }
      lock.unlock();
      cv_drain.notify_all();
    }
  }

  void execute_batch(Batch& batch) {
    SNP_OBS_SPAN("svc.batch");
    const std::size_t n = batch.requests.size();
    SNP_OBS_FLIGHT(obs::FlightKind::kBatch, obs::current_trace().trace_id,
                   0, static_cast<std::int64_t>(batch.id),
                   static_cast<std::int64_t>(n));
    if constexpr (obs::kEnabled) {
      // Every member request's flow arrow passes through the batch, not
      // just the root whose context the batch runs under.
      for (const auto& req : batch.requests) {
        SNP_OBS_FLOW_POINT("req.batch", req.trace_id, 't');
      }
    }
    try {
      bits::BitMatrix a(n, db_bit_cols());
      for (std::size_t i = 0; i < n; ++i) {
        auto dst = a.row64(i);
        const auto& src = batch.requests[i].words;
        std::copy(src.begin(), src.end(), dst.begin());
      }

      ComputeOptions copts;
      copts.threads = cfg.compute_threads;
      copts.lint = false;  // per-batch lint would spam the serve path
      copts.recovery = batch.requests.front().recovery;
      copts.breaker = cfg.breaker;
      // Arm cooperative cancellation only when *every* member carries a
      // deadline, and with the latest one — a mixed batch must never be
      // killed out from under its unbounded members, and under the
      // latest deadline a kill wastes nothing (all members are already
      // expired). Deadline-free batches get no token at all, so their
      // pipelines take no extra fault-injector draws.
      if (std::all_of(batch.requests.begin(), batch.requests.end(),
                      [](const Request& r) { return r.has_deadline; })) {
        auto latest = batch.requests.front().deadline_at;
        for (const Request& r : batch.requests) {
          latest = std::max(latest, r.deadline_at);
        }
        const double remaining = seconds_between(Clock::now(), latest);
        copts.cancel = std::make_shared<rt::CancelToken>(
            rt::Deadline(remaining > 0.0 ? remaining : -1.0));
      }
      auto result = ctx.compare(a, *batch.db, effective_op, copts);

      const auto done = Clock::now();
      const auto counts = result.counts.raw();
      const std::size_t cols = batch.db->rows();
      std::vector<QueryResult> rows(n);
      for (std::size_t i = 0; i < n; ++i) {
        auto& qr = rows[i];
        const auto row = counts.subspan(i * cols, cols);
        qr.row.assign(row.begin(), row.end());
        qr.batch_id = batch.id;
        qr.batch_rows = n;
        qr.epoch = batch.epoch;
        qr.degraded = result.timing.degraded;
        qr.trace_id = batch.requests[i].trace_id;
        qr.latency_s = seconds_between(batch.requests[i].submitted, done);
        // Late results are delivered and flagged, never dropped: the
        // caller still gets its row, plus the honest signal that the
        // budget was blown.
        qr.deadline_expired = batch.requests[i].has_deadline &&
                              done > batch.requests[i].deadline_at;
      }

      if constexpr (obs::kEnabled) {
        if (obs::CostLedger::attribution_enabled()) {
          attribute_batch_costs(batch, result.timing, done, rows);
        }
      }

      [[maybe_unused]] std::uint64_t trip_trace = 0;
      {
        const std::lock_guard lock(mu);
        completed_count += n;
        batch_count++;
        batch_rows_total += n;
        max_batch = std::max(max_batch, n);
        fault_event_count += result.timing.fault_events.size();
        if (result.timing.degraded) degraded_batch_count++;
        for (std::size_t i = 0; i < n; ++i) {
          if (batch.requests[i].has_deadline) {
            if (rows[i].deadline_expired) {
              deadline_expired_count++;
            } else {
              deadline_met_count++;
            }
          }
          const double wait_s =
              static_cast<double>(batch.requests[i].queue_wait_ns) * 1e-9;
          // Formation -> resolution; enqueued + wait is the formation
          // instant, so this excludes any pre-queue admission block.
          const double service_s = std::max(
              0.0,
              seconds_between(batch.requests[i].enqueued, done) - wait_s);
          latencies.push_back(rows[i].latency_s);
          queue_waits.push_back(wait_s);
          service_times.push_back(service_s);
          SNP_OBS_OBSERVE("svc.request_latency_seconds", rows[i].latency_s);
          SNP_OBS_OBSERVE("svc.service.time_seconds", service_s);
          if constexpr (obs::kEnabled) {
            if (slo_mon.record(rows[i].latency_s, rows[i].trace_id)) {
              trip_trace = rows[i].trace_id;
            }
            if (cfg.slo.objective_s > 0.0 &&
                rows[i].latency_s > cfg.slo.objective_s) {
              SNP_OBS_COUNT("svc.slo.breaches", 1);
            }
          }
          if (cfg.cache_capacity > 0 && batch.epoch == epoch) {
            cache_insert(batch.requests[i], rows[i].row);
          }
        }
      }
      SNP_OBS_COUNT("svc.batches", 1);
      SNP_OBS_COUNT("svc.batch.rows", n);
      if constexpr (obs::kEnabled) {
        // Dump outside the service mutex: the breach path does file I/O.
        if (trip_trace != 0) on_slo_trip(trip_trace);
      }

      // Exactly-once: every promise is resolved here and nowhere else.
      for (std::size_t i = 0; i < n; ++i) {
        SNP_OBS_FLIGHT(obs::FlightKind::kResolve, rows[i].trace_id, 0,
                       static_cast<std::int64_t>(batch.id),
                       static_cast<std::int64_t>(rows[i].latency_s * 1e6));
        SNP_OBS_FLOW_POINT("req.resolve", rows[i].trace_id, 'f');
        batch.requests[i].promise.set_value(std::move(rows[i]));
      }
    } catch (...) {
      [[maybe_unused]] std::uint32_t code = 0;
      try {
        throw;
      } catch (const rt::Error& e) {
        code = static_cast<std::uint32_t>(e.code());
      } catch (...) {
      }
      {
        const std::lock_guard lock(mu);
        failed_count += n;
        batch_count++;
        batch_rows_total += n;
        max_batch = std::max(max_batch, n);
        if (code == static_cast<std::uint32_t>(rt::ErrorCode::kDeadline)) {
          // The batch was killed mid-pipeline by its cancel token:
          // every deadline-carrying member blew its budget.
          for (const auto& req : batch.requests) {
            if (req.has_deadline) deadline_expired_count++;
          }
        }
      }
      SNP_OBS_COUNT("svc.batches", 1);
      SNP_OBS_COUNT("svc.batch.failures", 1);
      for (auto& req : batch.requests) {
        // Failed resolution keeps the flow arrow closed and records the
        // SNPRT code the future will carry; latency payload is -1.
        SNP_OBS_FLIGHT(obs::FlightKind::kResolve, req.trace_id, code,
                       static_cast<std::int64_t>(batch.id), -1);
        SNP_OBS_FLOW_POINT("req.resolve", req.trace_id, 'f');
        req.promise.set_exception(std::current_exception());
      }
      throw;  // lands in the pool's sticky channel; dispatcher clears it
    }
  }

  /// Builds the batch's quantized cost totals from the compare timing,
  /// splits them across the member requests by gamma-row ownership
  /// (every member owns exactly one row of the batched A operand), and
  /// records batch + shares in the ledger. The integer shares sum
  /// bit-identically to the batch totals (obs::split_exact).
  void attribute_batch_costs(Batch& batch, const TimingReport& timing,
                             Clock::time_point done,
                             std::vector<QueryResult>& rows) {
    const std::size_t n = batch.requests.size();
    obs::BatchCostTotals totals;
    totals.batch_id = batch.id;
    totals.width = static_cast<std::uint32_t>(n);
    totals.rows = n;
    totals.epoch = batch.epoch;
    totals.degraded = timing.degraded;
    const rt::ActionCounts actions = rt::count_actions(timing.fault_events);
    totals.retries = actions.retries;
    totals.failovers = actions.failovers;
    totals.device_ns = obs::quantize_cost_ns(timing.kernel_s);
    totals.h2d_ns = obs::quantize_cost_ns(timing.h2d_s);
    totals.d2h_ns = obs::quantize_cost_ns(timing.d2h_s);
    totals.h2d_bytes = timing.h2d_bytes;
    totals.d2h_bytes = timing.d2h_bytes;
    totals.wordops = timing.wordops;

    std::vector<std::uint64_t> trace_ids(n);
    for (std::size_t i = 0; i < n; ++i) {
      trace_ids[i] = batch.requests[i].trace_id;
    }
    const std::vector<std::uint64_t> rows_owned(n, 1);
    auto costs = obs::attribute_batch(totals, trace_ids, rows_owned);
    for (std::size_t i = 0; i < n; ++i) {
      costs[i].queue_wait_ns = batch.requests[i].queue_wait_ns;
      const double service_s = std::max(
          0.0, seconds_between(batch.requests[i].enqueued, done) -
                   static_cast<double>(batch.requests[i].queue_wait_ns) *
                       1e-9);
      costs[i].service_ns = obs::quantize_cost_ns(service_s);
      rows[i].cost = costs[i];
    }
    ledger.record_batch(totals, costs);
  }

  /// Caller holds mu (and has already accrued the depth integral up to
  /// `now`). Resolves every pending request whose deadline has passed
  /// with rt::Error(kDeadline) and removes it from the queue — the
  /// batch-formation gate that guarantees an expired request never
  /// reaches a kernel launch. Erasures do not advance the clock, so the
  /// depth integral is unaffected.
  void shed_expired_locked(Clock::time_point now) {
    for (auto it = pending.begin(); it != pending.end();) {
      if (!it->has_deadline || now < it->deadline_at) {
        ++it;
        continue;
      }
      failed_count++;
      deadline_shed_count++;
      SNP_OBS_COUNT("svc.deadline.shed", 1);
      SNP_OBS_FLIGHT(obs::FlightKind::kDeadlineShed, it->trace_id, 0,
                     static_cast<std::int64_t>(pending.size()),
                     static_cast<std::int64_t>(
                         seconds_between(it->deadline_at, now) * -1e6));
      SNP_OBS_FLOW_POINT("req.resolve", it->trace_id, 'f');
      it->promise.set_exception(std::make_exception_ptr(rt::Error(
          rt::ErrorCode::kDeadline,
          "request deadline expired before batch formation; shed without "
          "a launch")));
      it = pending.erase(it);
      SNP_OBS_GAUGE_SUB("svc.queue_depth", 1);
    }
  }

  /// Caller holds mu. Accrues the queue-depth time integral
  /// (sum of depth x dt over pending-queue transitions) up to `now`,
  /// *before* the queue is mutated. Published as the
  /// svc.queue.depth_time_us gauge — exact at every transition, so any
  /// quiescent read (post-drain) equals the sum of per-request queue
  /// waits identically: the Little's-law consistency anchor.
  void note_queue_transition(Clock::time_point now) {
    depth_time_ns +=
        static_cast<std::uint64_t>(pending.size()) *
        static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                now - last_queue_change)
                .count());
    last_queue_change = now;
    SNP_OBS_GAUGE_SET("svc.queue.depth_time_us", depth_time_ns / 1000);
  }

  /// Burn-rate trigger edge: latch brown-out, pin the breach in the
  /// flight stream, then dump the rings while the evidence is still
  /// resident. Never called under mu (auto_dump writes a file).
  void on_slo_trip(std::uint64_t trace_id) {
    {
      const std::lock_guard lock(mu);
      if (!brownout) {
        brownout = true;
        brownout_entry_count++;
        SNP_OBS_COUNT("svc.brownout.entries", 1);
        SNP_OBS_FLIGHT(obs::FlightKind::kBrownout, trace_id, 0, 1,
                       cfg.brownout_class_max);
      }
    }
    if constexpr (obs::kEnabled) {
      const auto snap = slo_mon.snapshot();
      SNP_OBS_COUNT("svc.slo.trips", 1);
      SNP_OBS_FLIGHT(obs::FlightKind::kSloBreach, trace_id, 0,
                     static_cast<std::int64_t>(snap.breaches),
                     static_cast<std::int64_t>(snap.total));
      obs::FlightRecorder::global().auto_dump("slo-breach");
    }
  }

  /// Caller holds mu. Single-probe table: a hash collision with different
  /// key material is overwritten (verified by the stored words on lookup),
  /// eviction is FIFO by insertion order.
  void cache_insert(const Request& req, const std::vector<std::uint32_t>& row) {
    if (cache.find(req.key) == cache.end()) {
      while (cache.size() >= cfg.cache_capacity && !cache_fifo.empty()) {
        cache.erase(cache_fifo.front());
        cache_fifo.pop_front();
      }
      cache_fifo.push_back(req.key);
    }
    auto& entry = cache[req.key];
    entry.words = req.words;
    entry.epoch = epoch;
    entry.row = row;
  }

  [[nodiscard]] std::size_t db_bit_cols() const { return db->bit_cols(); }

  ServiceStats stats() const {
    std::vector<double> lat;
    std::vector<double> waits;
    std::vector<double> services;
    ServiceStats s;
    {
      const std::lock_guard lock(mu);
      s.submitted = submitted_count;
      s.completed = completed_count;
      s.failed = failed_count;
      s.rejected = rejected_count;
      s.batches = batch_count;
      s.cache_hits = cache_hits;
      s.cache_misses = cache_misses;
      s.fault_events = fault_event_count;
      s.degraded_batches = degraded_batch_count;
      s.deadline_shed = deadline_shed_count;
      s.deadline_expired = deadline_expired_count;
      s.deadline_met = deadline_met_count;
      s.brownout_entries = brownout_entry_count;
      s.brownout_shed = brownout_shed_count;
      s.brownout_active = brownout;
      s.max_batch_rows = max_batch;
      s.mean_batch_rows =
          batch_count == 0 ? 0.0
                           : static_cast<double>(batch_rows_total) /
                                 static_cast<double>(batch_count);
      s.peak_queue_depth = peak_queue;
      s.epoch = epoch;
      lat = latencies;
      waits = queue_waits;
      services = service_times;
    }
    std::sort(lat.begin(), lat.end());
    s.p50_latency_s = percentile(lat, 0.50);
    s.p99_latency_s = percentile(lat, 0.99);
    s.max_latency_s = lat.empty() ? 0.0 : lat.back();
    const auto mean = [](const std::vector<double>& v) {
      if (v.empty()) return 0.0;
      double sum = 0.0;
      for (const double x : v) sum += x;
      return sum / static_cast<double>(v.size());
    };
    s.mean_queue_wait_s = mean(waits);
    s.mean_service_time_s = mean(services);
    std::sort(waits.begin(), waits.end());
    std::sort(services.begin(), services.end());
    s.p99_queue_wait_s = percentile(waits, 0.99);
    s.p99_service_time_s = percentile(services, 0.99);
    if constexpr (obs::kEnabled) {
      const auto slo = slo_mon.snapshot();
      s.slo_breaches = slo.breaches;
      s.slo_trips = slo.trips;
      s.slo_burn_fast = slo.burn_fast;
      s.slo_burn_slow = slo.burn_slow;
    }
    return s;
  }

  [[nodiscard]] SloReport slo_report() const {
    SloReport r;
    r.objective_s = cfg.slo.objective_s;
    r.state = slo_mon.snapshot();
    r.p50_le_s = slo_mon.percentile_le(0.50);
    r.p99_le_s = slo_mon.percentile_le(0.99);
    r.bounds = slo_mon.bounds();
    r.bucket_counts = slo_mon.bucket_counts();
    r.exemplars = slo_mon.exemplars();
    for (std::size_t i = r.exemplars.size(); i-- > 0;) {
      if (r.exemplars[i].has_value()) {
        r.worst = r.exemplars[i];
        break;
      }
    }
    return r;
  }

  // ---- state -------------------------------------------------------------

  const ServiceConfig cfg;
  Context ctx;
  bits::Comparison effective_op = bits::Comparison::kXor;
  exec::ThreadPool pool;  ///< 1-thread batch executor (sticky-error channel)
  /// Internally locked; fed on completion paths, never under mu for the
  /// dump-triggering edge (see on_slo_trip).
  obs::SloMonitor slo_mon;

  mutable std::mutex mu;
  std::condition_variable cv_work;   ///< dispatcher waits for arrivals
  std::condition_variable cv_space;  ///< kBlock submitters wait for room
  std::condition_variable cv_drain;  ///< drain() waits for quiescence
  std::shared_ptr<const bits::BitMatrix> db;
  std::deque<Request> pending;
  std::unordered_map<std::uint64_t, CacheEntry> cache;
  std::deque<std::uint64_t> cache_fifo;
  std::uint64_t epoch = 1;
  bool paused = false;
  bool stop = false;
  std::size_t inflight = 0;
  /// kBlock submitters currently parked in the admission wait; the
  /// destructor waits (on cv_blocked) for this to reach zero.
  std::size_t blocked_submitters = 0;
  std::condition_variable cv_blocked;
  /// Brown-out latch (set on SLO trip, cleared edge-triggered after a
  /// batch completes with both burn rates back under the threshold).
  bool brownout = false;
  /// Per-class retry-budget buckets (created lazily at first use).
  std::unordered_map<int, std::shared_ptr<rt::RetryBudget>> class_budgets;

  std::uint64_t submitted_count = 0;
  std::uint64_t completed_count = 0;
  std::uint64_t failed_count = 0;
  std::uint64_t rejected_count = 0;
  std::uint64_t batch_count = 0;
  std::uint64_t batch_counter = 0;
  std::uint64_t batch_rows_total = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t fault_event_count = 0;
  std::uint64_t degraded_batch_count = 0;
  std::uint64_t deadline_shed_count = 0;
  std::uint64_t deadline_expired_count = 0;
  std::uint64_t deadline_met_count = 0;
  std::uint64_t brownout_entry_count = 0;
  std::uint64_t brownout_shed_count = 0;
  std::size_t max_batch = 0;
  std::size_t peak_queue = 0;
  std::vector<double> latencies;
  std::vector<double> queue_waits;    ///< enqueue -> batch formation
  std::vector<double> service_times;  ///< formation -> resolution
  /// Queue-depth time integral state (note_queue_transition).
  std::uint64_t depth_time_ns = 0;
  Clock::time_point last_queue_change;
  /// Per-engine cost ledger (batch totals + exact per-request shares).
  obs::CostLedger ledger;

  std::thread dispatcher;
};

ServiceEngine::ServiceEngine(bits::BitMatrix database, ServiceConfig config)
    : impl_(std::make_unique<Impl>(std::move(database), std::move(config))) {}

ServiceEngine::~ServiceEngine() = default;

std::future<QueryResult> ServiceEngine::submit(
    const bits::BitMatrix& query,
    const std::optional<rt::RecoveryOptions>& recovery,
    std::uint64_t* trace_out) {
  SubmitOptions options;
  options.recovery = recovery;
  options.trace_out = trace_out;
  return impl_->submit(query, options);
}

std::future<QueryResult> ServiceEngine::submit(const bits::BitMatrix& query,
                                               const SubmitOptions& options) {
  return impl_->submit(query, options);
}

void ServiceEngine::update_database(bits::BitMatrix database) {
  impl_->update_database(std::move(database));
}

std::uint64_t ServiceEngine::epoch() const {
  const std::lock_guard lock(impl_->mu);
  return impl_->epoch;
}

void ServiceEngine::drain() { impl_->drain(); }
void ServiceEngine::pause() { impl_->set_paused(true); }
void ServiceEngine::resume() { impl_->set_paused(false); }

ServiceStats ServiceEngine::stats() const { return impl_->stats(); }

obs::CostSnapshot ServiceEngine::cost() const {
  return impl_->ledger.snapshot();
}

void ServiceEngine::write_cost_json(std::ostream& os) const {
  impl_->ledger.write_json(os);
}

SloReport ServiceEngine::slo() const { return impl_->slo_report(); }

const ServiceConfig& ServiceEngine::config() const { return impl_->cfg; }

std::size_t ServiceEngine::db_rows() const {
  const std::lock_guard lock(impl_->mu);
  return impl_->db->rows();
}

}  // namespace snp::svc
