#include "core/snpcmp.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>

#include "analyze/analyzer.hpp"
#include "cpu/engine.hpp"
#include "exec/task_graph.hpp"
#include "exec/thread_pool.hpp"
#include "kern/gpu_kernel.hpp"
#include "model/peak.hpp"
#include "obs/obs.hpp"
#include "rt/fault.hpp"
#include "sim/roofline.hpp"
#include "sim/transfer.hpp"
#include "stats/forensic.hpp"
#include "stats/ld.hpp"

namespace snp {

namespace {

using bits::BitMatrix;
using bits::Comparison;
using bits::CountMatrix;

model::WorkloadKind workload_for(std::size_t m_rows, std::size_t n_rows,
                                 const model::GpuSpec& dev) {
  // FastID shapes have a tiny query side against a huge database; LD
  // shapes are square-ish. Pick the Table II preset accordingly.
  const std::size_t small = std::min(m_rows, n_rows);
  const std::size_t large = std::max(m_rows, n_rows);
  const auto query_like = 4 * static_cast<std::size_t>(dev.banks);
  return (small <= query_like && large > 8 * small)
             ? model::WorkloadKind::kFastId
             : model::WorkloadKind::kLd;
}

void check_operands(const BitMatrix& a, const BitMatrix& b, Comparison op,
                    const ComputeOptions& options) {
  if (a.bit_cols() != b.bit_cols()) {
    throw std::invalid_argument(
        "compare: operands must share the K (bit) dimension");
  }
  if (a.empty() || b.empty()) {
    throw std::invalid_argument("compare: empty operand");
  }
  if (options.pre_negate && op != Comparison::kAndNot) {
    throw std::invalid_argument(
        "compare: pre_negate only applies to AND-NOT (Eq. 3)");
  }
  if (!options.keep_counts && options.functional &&
      !options.chunk_callback) {
    throw std::invalid_argument(
        "compare: keep_counts=false without a chunk_callback would "
        "discard all results");
  }
}

}  // namespace

Context::Context() = default;
Context::~Context() = default;
Context::Context(Context&&) noexcept = default;
Context& Context::operator=(Context&&) noexcept = default;

Context Context::cpu() { return Context(); }

Context Context::gpu(const std::string& device_name) {
  Context ctx;
  ctx.gpu_ = cl::Platform::device(device_name);
  return ctx;
}

std::string Context::device_name() const {
  return gpu_ ? gpu_->name() : "CPU (native BLIS-like engine)";
}

const model::GpuSpec& Context::gpu_spec() const {
  if (!gpu_) {
    throw std::logic_error("gpu_spec: CPU context");
  }
  return gpu_->spec();
}

model::KernelConfig Context::effective_config(
    const BitMatrix& a, const BitMatrix& b, Comparison op,
    const ComputeOptions& options) const {
  if (!gpu_) {
    throw std::logic_error("effective_config: CPU context");
  }
  if (options.config) {
    return *options.config;
  }
  const auto& dev = gpu_->spec();
  model::KernelConfig cfg =
      model::paper_preset(dev, workload_for(a.rows(), b.rows(), dev));
  cfg.pre_negated = options.pre_negate && op == Comparison::kAndNot;
  return cfg;
}

namespace {

/// Chunking decision shared by compare() and estimate(): stream the larger
/// operand through device memory in tile-aligned chunks sized to fit two
/// in-flight buffers within the device limits.
struct ChunkPlan {
  bool stream_b = true;
  std::size_t chunk_rows = 0;
  std::size_t stream_rows = 0;
  std::size_t resident_bytes = 0;
  std::size_t stream_row_bytes = 0;
  std::size_t c_row_bytes = 0;
};

ChunkPlan plan_chunks(const model::GpuSpec& dev,
                      const model::KernelConfig& cfg, std::size_t m_rows,
                      std::size_t n_rows, std::size_t row_bytes,
                      std::size_t requested_chunk_rows) {
  ChunkPlan p;
  p.stream_b = n_rows >= m_rows;
  const std::size_t resident_rows = p.stream_b ? m_rows : n_rows;
  p.stream_rows = p.stream_b ? n_rows : m_rows;
  p.stream_row_bytes = row_bytes;
  p.resident_bytes = resident_rows * row_bytes;
  if (p.resident_bytes > dev.max_alloc_bytes) {
    throw rt::Error(
        rt::ErrorCode::kAlloc,
        "compare: resident operand exceeds the device allocation limit; "
        "reduce the smaller matrix or use a larger-memory device");
  }
  p.c_row_bytes = resident_rows * 4;

  p.chunk_rows = requested_chunk_rows;
  if (p.chunk_rows == 0) {
    const std::size_t avail =
        dev.global_bytes > p.resident_bytes * 2
            ? (dev.global_bytes - p.resident_bytes) / 2
            : dev.global_bytes / 4;
    const std::size_t per_row = p.stream_row_bytes + p.c_row_bytes;
    const std::size_t by_global = avail / (2 * per_row);
    const std::size_t by_alloc_in =
        dev.max_alloc_bytes / p.stream_row_bytes;
    const std::size_t by_alloc_out = dev.max_alloc_bytes / p.c_row_bytes;
    // Also keep chunks modest so transfers pipeline against compute: "the
    // amount of data to be transferred at each step must be evenly
    // balanced with the amount of computation ... to sufficiently overlap
    // execution and data transfer" (paper Section VI-E-2).
    constexpr std::size_t kMaxChunkBytes = 256ull << 20;
    const std::size_t by_pipeline = std::max<std::size_t>(
        kMaxChunkBytes / per_row, 1);
    p.chunk_rows = std::min({by_global, by_alloc_in, by_alloc_out,
                             by_pipeline, p.stream_rows});
    const auto tile =
        static_cast<std::size_t>(p.stream_b ? cfg.n_r : cfg.m_c);
    p.chunk_rows = std::max(tile, p.chunk_rows / tile * tile);
  }
  p.chunk_rows = std::min(p.chunk_rows, p.stream_rows);
  if (p.chunk_rows == 0) {
    throw rt::Error(rt::ErrorCode::kAlloc,
                    "compare: device memory cannot hold one chunk");
  }
  return p;
}

}  // namespace

TimingReport Context::estimate(std::size_t m, std::size_t n,
                               std::size_t k_bits, Comparison op,
                               const ComputeOptions& options) const {
  if (m == 0 || n == 0 || k_bits == 0) {
    throw std::invalid_argument("estimate: degenerate shape");
  }
  const std::size_t k_words =
      bits::ceil_div(k_bits, bits::kBitsPerWord32);
  const double wordops = static_cast<double>(m) * static_cast<double>(n) *
                         static_cast<double>(k_words);
  if (!gpu_) {
    TimingReport t;
    t.device = "Xeon E5-2620 v2 (model)";
    t.kernel_s = sim::cpu_kernel_seconds(model::xeon_e5_2620v2(), wordops);
    t.end_to_end_s = t.kernel_s;
    t.kernel_gops = wordops / t.kernel_s / 1e9;
    t.wordops = static_cast<std::uint64_t>(m) * n * k_words;
    t.chunks = 1;
    return t;
  }

  const model::GpuSpec& dev = gpu_->spec();
  model::KernelConfig cfg;
  if (options.config) {
    cfg = *options.config;
  } else {
    cfg = model::paper_preset(dev, workload_for(m, n, dev));
    cfg.pre_negated = options.pre_negate && op == Comparison::kAndNot;
  }
  const auto check = model::validate(cfg, dev);
  if (!check.ok) {
    throw std::invalid_argument("estimate: invalid kernel config: " +
                                check.reason);
  }
  const std::size_t row_bytes =
      bits::ceil_div(k_bits, bits::kBitsPerWord64) * 8;
  const ChunkPlan plan =
      plan_chunks(dev, cfg, m, n, row_bytes, options.chunk_rows);

  std::vector<sim::Chunk> chunks;
  chunks.push_back({plan.resident_bytes, 0.0, 0});  // resident upload
  double kernel_gops_weighted = 0.0;
  double pct_weighted = 0.0;
  double attainable_weighted = 0.0;
  double memory_bound_s = 0.0;
  double total_kernel_s = 0.0;
  std::uint64_t h2d_bytes = plan.resident_bytes;
  std::uint64_t d2h_bytes = 0;
  std::uint64_t wordops_exact = 0;
  int active_cores = 0;
  for (std::size_t row0 = 0; row0 < plan.stream_rows;
       row0 += plan.chunk_rows) {
    const std::size_t rows =
        std::min(plan.chunk_rows, plan.stream_rows - row0);
    const sim::KernelShape shape{plan.stream_b ? m : rows,
                                 plan.stream_b ? rows : n, k_words};
    const auto kt =
        sim::estimate_kernel(dev, cfg, op, shape, cfg.pre_negated);
    const sim::RooflinePoint rp =
        sim::roofline_for(dev, cfg, op, shape, cfg.pre_negated);
    chunks.push_back({rows * plan.stream_row_bytes, kt.seconds,
                      rows * plan.c_row_bytes});
    h2d_bytes += rows * plan.stream_row_bytes;
    d2h_bytes += rows * plan.c_row_bytes;
    wordops_exact +=
        static_cast<std::uint64_t>(shape.m) * shape.n * shape.k_words;
    total_kernel_s += kt.seconds;
    kernel_gops_weighted += kt.gops * kt.seconds;
    pct_weighted += kt.pct_of_peak * kt.seconds;
    attainable_weighted += rp.attainable_gops * kt.seconds;
    if (rp.memory_bound) {
      memory_bound_s += kt.seconds;
    }
    active_cores = std::max(active_cores, kt.active_cores);
  }

  sim::TimelineOptions topts;
  topts.double_buffered = options.double_buffer;
  topts.include_init = options.include_init;
  const sim::Timeline tl = sim::run_timeline(dev, chunks, topts);
  if (options.timeline_out != nullptr) {
    *options.timeline_out = tl;
  }

  TimingReport t;
  if constexpr (obs::kEnabled) {
    if (obs::TraceCollector::global().enabled()) {
      t.trace_anchor_us = obs::TraceCollector::global().now_us();
    }
  }
  t.device = dev.name;
  t.config = cfg.to_string();
  t.init_s = tl.init_seconds;
  t.h2d_s = tl.h2d_seconds;
  t.kernel_s = total_kernel_s;
  t.d2h_s = tl.d2h_seconds;
  t.h2d_bytes = h2d_bytes;
  t.d2h_bytes = d2h_bytes;
  t.wordops = wordops_exact;
  t.end_to_end_s = tl.total_seconds;
  t.chunks = static_cast<int>(chunks.size()) - 1;
  t.active_cores = active_cores;
  if (total_kernel_s > 0.0) {
    t.kernel_gops = kernel_gops_weighted / total_kernel_s;
    t.pct_of_peak = pct_weighted / total_kernel_s;
    t.attainable_gops = attainable_weighted / total_kernel_s;
    t.memory_bound = memory_bound_s > total_kernel_s / 2;
  }
  const double serial = t.init_s + t.h2d_s + t.kernel_s + t.d2h_s;
  t.overlap_hidden_s = std::max(0.0, serial - t.end_to_end_s);
  return t;
}

CompareResult Context::compare(const BitMatrix& a, const BitMatrix& b,
                               Comparison op,
                               const ComputeOptions& options) {
  check_operands(a, b, op, options);
  if (!gpu_) {
    return compare_cpu(a, b, op, options);
  }
  rt::FaultLog fault_log;
  GpuProgress progress;
  CompareResult result;
  rt::CircuitBreaker* breaker = nullptr;
  if (options.breaker.failure_threshold > 0) {
    breaker =
        &rt::BreakerRegistry::global().get(gpu_->name(), options.breaker);
  }
  bool device_attempted = false;
  try {
    // Breaker consult sits ahead of the whole retry rung: an open
    // breaker means the device has failed persistently very recently,
    // so burn zero device attempts and let the ladder below route the
    // work (kCancelled is non-retryable, so abort/retry propagate and
    // degrade/failover fall straight to the CPU rung).
    if (breaker != nullptr && !breaker->allow()) {
      throw rt::Error(rt::ErrorCode::kCancelled,
                      "device '" + gpu_->name() +
                          "' circuit breaker open; fast-failing to the "
                          "recovery ladder");
    }
    device_attempted = true;
    compare_gpu(a, b, op, options, &fault_log, &progress, result);
    if (breaker != nullptr) breaker->on_success();
    result.timing.fault_events = fault_log.snapshot();
    return result;
  } catch (const rt::Error& e) {
    // A deadline cancellation is final: nobody is waiting for the
    // answer, so never recompute it on the CPU rung — and it says
    // nothing about device health, so the breaker is not fed either.
    if (e.code() == rt::ErrorCode::kDeadline) throw;
    if (breaker != nullptr && device_attempted) breaker->on_failure();
    const rt::FailPolicy policy = options.recovery.policy;
    // On a single device the failover rung has no surviving peer to move
    // work to, so it shares the degradation rung with kDegrade
    // (multi::MultiGpuContext owns true shard failover).
    if (policy != rt::FailPolicy::kDegrade &&
        policy != rt::FailPolicy::kFailover) {
      throw;  // abort/retry: propagate with the structured code intact
    }
    SNP_OBS_COUNT("rt.degrades", 1);
    SNP_OBS_FLIGHT(obs::FlightKind::kFault, obs::current_trace().trace_id,
                   static_cast<std::uint32_t>(e.code()), -1, 0);
    {
      rt::FaultEvent ev;
      ev.site = "compare.degrade";
      ev.code = e.code();
      ev.action = "degrade";
      ev.detail = e.what();
      ev.trace_id = obs::current_trace().trace_id;
      fault_log.record(std::move(ev));
    }
    // GPU->CPU graceful degradation: the in-order drain chain guarantees
    // the delivered rows form an exact prefix of the streamed operand, so
    // the host engine recomputes only the remainder — streaming consumers
    // see each chunk exactly once, and the merged counts are bit-identical
    // to a clean run (the functional kernels and the host engine agree
    // bit-for-bit by the conformance suite).
    const std::string gpu_name = gpu_->name();
    const auto wall0 = std::chrono::steady_clock::now();
    if (options.functional) {
      const bool sb = progress.stream_b;
      const std::size_t total_rows = sb ? b.rows() : a.rows();
      const std::size_t delivered =
          std::min(progress.delivered_rows.load(), total_rows);
      if (delivered < total_rows) {
        const BitMatrix remainder = sb ? b.row_slice(delivered, total_rows)
                                       : a.row_slice(delivered, total_rows);
        const BitMatrix& cpu_a = sb ? a : remainder;
        const BitMatrix& cpu_b = sb ? remainder : b;
        CountMatrix part;
        if (options.threads > 0) {
          exec::ThreadPool pool(options.threads);
          part = cpu::compare_blocked_async(cpu_a, cpu_b, op, pool);
        } else {
          part = cpu::compare_blocked(cpu_a, cpu_b, op);
        }
        // The host rung really popcounts the remainder; the cost ledger
        // should see that work even though no device kernel ran it.
        result.timing.wordops +=
            static_cast<std::uint64_t>(cpu_a.rows()) * cpu_b.rows() *
            bits::ceil_div(a.bit_cols(), bits::kBitsPerWord32);
        if (options.chunk_callback) {
          options.chunk_callback(
              ComputeOptions::ChunkView{delivered, sb, part});
        }
        if (options.keep_counts) {
          if (result.counts.rows() != a.rows() ||
              result.counts.cols() != b.rows()) {
            result.counts = CountMatrix(a.rows(), b.rows());
          }
          for (std::size_t i = 0; i < part.rows(); ++i) {
            for (std::size_t j = 0; j < part.cols(); ++j) {
              if (sb) {
                result.counts.at(i, delivered + j) = part.at(i, j);
              } else {
                result.counts.at(delivered + i, j) = part.at(i, j);
              }
            }
          }
        }
      }
    }
    const double fallback_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      wall0)
            .count();
    result.timing.degraded = true;
    result.timing.device = gpu_name + " -> cpu (degraded)";
    result.timing.kernel_s += fallback_s;
    result.timing.end_to_end_s += fallback_s;
    result.timing.fault_events = fault_log.snapshot();
    return result;
  }
}

CompareResult Context::compare_cpu(const BitMatrix& a, const BitMatrix& b,
                                   Comparison op,
                                   const ComputeOptions& options) {
  SNP_OBS_SPAN("core.compare_cpu");
  SNP_OBS_COUNT("core.compare.calls", 1);
  CompareResult result;
  if constexpr (obs::kEnabled) {
    if (obs::TraceCollector::global().enabled()) {
      result.timing.trace_anchor_us = obs::TraceCollector::global().now_us();
    }
  }
  result.timing.device = device_name();
  result.timing.chunks = 1;
  const double wordops = static_cast<double>(a.rows()) *
                         static_cast<double>(b.rows()) *
                         static_cast<double>(bits::ceil_div(
                             a.bit_cols(), bits::kBitsPerWord32));
  SNP_OBS_COUNT("core.kernel.wordops", wordops);
  result.timing.wordops =
      static_cast<std::uint64_t>(a.rows()) * b.rows() *
      bits::ceil_div(a.bit_cols(), bits::kBitsPerWord32);
  if (options.functional) {
    const auto t0 = std::chrono::steady_clock::now();
    bits::CountMatrix counts;
    if (options.threads > 0) {
      // Macro-tile task graph on a pool instead of the OpenMP pragma path;
      // bit-identical counts (see cpu::compare_blocked_async).
      exec::ThreadPool pool(options.threads);
      counts = cpu::compare_blocked_async(a, b, op, pool);
    } else {
      counts = cpu::compare_blocked(a, b, op);
    }
    const auto t1 = std::chrono::steady_clock::now();
    result.timing.kernel_s =
        std::chrono::duration<double>(t1 - t0).count();
    result.timing.end_to_end_s = result.timing.kernel_s;
    result.timing.kernel_gops =
        wordops / result.timing.kernel_s / 1e9;
    sim::HostChunkEvent ev;
    ev.rows = b.rows();
    ev.host_exec_end = result.timing.kernel_s;
    ev.kernel_end = result.timing.kernel_s;
    result.timing.chunk_events.push_back(ev);
    if (options.chunk_callback) {
      options.chunk_callback(
          ComputeOptions::ChunkView{0, true, counts});
    }
    if (options.keep_counts) {
      result.counts = std::move(counts);
    }
  }
  return result;
}

void Context::compare_gpu(const BitMatrix& a, const BitMatrix& b,
                          Comparison op, const ComputeOptions& options,
                          rt::FaultLog* fault_log, GpuProgress* progress,
                          CompareResult& result) {
  SNP_OBS_SPAN("core.compare_gpu");
  SNP_OBS_COUNT("core.compare.calls", 1);
  if constexpr (obs::kEnabled) {
    // Session-clock anchor for the merged trace: pid-0/pid-2 events are
    // relative to this compare, pid-1 spans to the collector session.
    if (obs::TraceCollector::global().enabled()) {
      result.timing.trace_anchor_us = obs::TraceCollector::global().now_us();
    }
  }
  const rt::RecoveryOptions rec = options.recovery;
  const model::GpuSpec& dev = gpu_->spec();
  model::KernelConfig cfg = effective_config(a, b, op, options);
  const auto check = model::validate(cfg, dev);
  if (!check.ok) {
    throw std::invalid_argument("compare: invalid kernel config: " +
                                check.reason);
  }

  // Eq. 3 lowering happens on the host before upload: the negated operand
  // is what the database would store.
  const BitMatrix* b_ptr = &b;
  BitMatrix b_negated;
  if (cfg.pre_negated) {
    b_negated = b.negated();
    b_ptr = &b_negated;
  }
  const BitMatrix& b_eff = *b_ptr;

  // Stream the larger operand through device memory in chunks; the other
  // stays resident. Row strides of both operands match (same K), so the
  // plan's per-row bytes use the streamed operand's stride.
  const std::size_t k_words =
      bits::ceil_div(a.bit_cols(), bits::kBitsPerWord32);
  const bool stream_b_pred = b_eff.rows() >= a.rows();
  const BitMatrix& streamed_ref = stream_b_pred ? b_eff : a;
  const ChunkPlan plan =
      plan_chunks(dev, cfg, a.rows(), b_eff.rows(),
                  streamed_ref.words64_per_row() * 8, options.chunk_rows);
  const bool stream_b = plan.stream_b;
  progress->stream_b = stream_b;
  const BitMatrix& resident = stream_b ? a : b_eff;
  const BitMatrix& streamed = stream_b ? b_eff : a;
  const std::size_t resident_bytes = resident.size_bytes();
  const std::size_t stream_row_bytes = plan.stream_row_bytes;
  const std::size_t c_row_bytes = plan.c_row_bytes;
  const std::size_t chunk_rows = plan.chunk_rows;

  cl::Context clctx(*gpu_);
  cl::CommandQueue& q = clctx.queue();

  result.timing.device = dev.name;
  result.timing.config = cfg.to_string();
  if (options.lint) {
    // Pre-launch verification: the dataflow engine proves the generated
    // kernel program race-free, in-bounds, and overflow-free for the
    // *actual* trip count and LDS allocation of this launch. Warn/info
    // findings ride along in lint_notes; an error-severity finding means
    // the kernel must not launch and aborts with exit code 3 (the first
    // failed check's ID leads the message).
    SNP_OBS_SPAN("core.lint");
    analyze::AnalyzeOptions aopts;
    aopts.k_iterations = std::max<std::uint64_t>(
        1, (k_words + static_cast<std::size_t>(aopts.unroll) - 1) /
               static_cast<std::size_t>(aopts.unroll));
    aopts.lds_words = options.lds_words;
    const auto lint = analyze::analyze(dev, cfg, op, aopts);
    SNP_OBS_COUNT("core.lint.diags", lint.diagnostics().size());
    for (const auto& d : lint.diagnostics()) {
      result.timing.lint_notes.push_back(
          std::string(analyze::to_string(d.severity)) + "  " + d.id +
          "  " + d.message);
    }
    if (lint.has_errors()) {
      const auto* first = lint.first_error();
      throw analyze::VerificationError(
          first->id, "pre-launch verification failed: " + first->message);
    }
  }
  if (options.functional && options.keep_counts) {
    result.counts = CountMatrix(a.rows(), b.rows());
  }

  const kern::GpuSnpKernel kernel(dev, cfg, op);

  // Every device operation below runs under the bounded-retry rung: the
  // clmini injection sites throw before any virtual-clock or accounting
  // mutation, so a retried call replays against bit-identical state and
  // recovered runs stay indistinguishable from clean ones.
  auto resident_buf = rt::with_retry(rec, "alloc", -1, fault_log, [&] {
    return clctx.create_buffer(resident_bytes);
  });
  {
    const auto raw = resident.raw64();
    const cl::Event ev = rt::with_retry(rec, "h2d", -1, fault_log, [&] {
      return q.enqueue_write(
          *resident_buf,
          std::span<const std::byte>(
              reinterpret_cast<const std::byte*>(raw.data()),
              raw.size_bytes()));
    });
    result.timing.h2d_s += ev.duration();
    result.timing.h2d_bytes += raw.size_bytes();
    SNP_OBS_COUNT("core.h2d.bytes", raw.size_bytes());
  }

  const int inflight = options.double_buffer ? 2 : 1;
  std::vector<std::shared_ptr<cl::Buffer>> stream_bufs;
  std::vector<std::shared_ptr<cl::Buffer>> c_bufs;
  for (int i = 0; i < inflight; ++i) {
    stream_bufs.push_back(rt::with_retry(rec, "alloc", i, fault_log, [&] {
      return clctx.create_buffer(chunk_rows * stream_row_bytes);
    }));
    c_bufs.push_back(rt::with_retry(rec, "alloc", i, fault_log, [&] {
      return clctx.create_buffer(chunk_rows * c_row_bytes);
    }));
  }

  double kernel_gops_weighted = 0.0;
  double pct_weighted = 0.0;
  double attainable_weighted = 0.0;
  double memory_bound_s = 0.0;
  double total_kernel_s = 0.0;
  int active_cores = 0;

  const std::size_t n_chunks =
      bits::ceil_div(streamed.rows(), chunk_rows);
  result.timing.chunk_events.resize(n_chunks);

  // Asynchronous host pipeline (options.threads > 0, functional runs
  // only): per chunk, a pack task slices the streamed operand, an execute
  // task (depending on the pack) runs the functional kernel, and a drain
  // task (depending on the execute AND the previous drain) delivers the
  // chunk callback and scatters the block into the gamma matrix. The
  // drain chain makes delivery order and the reduction deterministic and
  // identical to the serial path for every thread count; the semaphore
  // bounds chunks in flight so host memory stays bounded at paper scale.
  // The virtual-clock command enqueues below stay on the calling thread
  // in both modes — simulated timing is independent of host threading.
  const bool async = options.threads > 0 && options.functional;
  std::unique_ptr<exec::ThreadPool> pool;
  std::unique_ptr<exec::TaskGraph> graph;
  std::unique_ptr<exec::Semaphore> slots;
  exec::TaskGraph::TaskId prev_drain = 0;
  const auto wall0 = std::chrono::steady_clock::now();
  const auto host_now = [wall0] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         wall0)
        .count();
  };
  if (async) {
    pool = std::make_unique<exec::ThreadPool>(options.threads);
    graph = std::make_unique<exec::TaskGraph>(*pool);
    slots = std::make_unique<exec::Semaphore>(
        options.max_inflight_chunks > 0 ? options.max_inflight_chunks
                                        : 2 * options.threads);
  }
  // If an enqueue fault exhausts its retries mid-loop, the unwind must
  // not destroy chunk-task captures while pool workers still run them:
  // this guard quiesces the graph first (swallowing its own error — the
  // original exception is the one that propagates). Declared after the
  // graph so it is destroyed before it.
  struct GraphQuiesce {
    exec::TaskGraph* graph = nullptr;
    ~GraphQuiesce() {
      if (graph != nullptr) {
        try {
          graph->wait();
        } catch (...) {  // NOLINT(bugprone-empty-catch)
        }
      }
    }
  } quiesce{graph.get()};

  struct ChunkState {
    BitMatrix chunk;    ///< packed slice of the streamed operand
    CountMatrix part;   ///< this chunk's block of the gamma matrix
  };

  std::vector<std::byte> readback;
  for (std::size_t ci = 0; ci < n_chunks; ++ci) {
    // Cooperative cancellation boundary: a fired token (explicit cancel
    // or expired request deadline) stops the pipeline here, before this
    // chunk's upload/launch, instead of running the stream to the end.
    // GraphQuiesce below settles any in-flight async chunks on unwind.
    if (options.cancel != nullptr) {
      options.cancel->checkpoint(static_cast<std::int64_t>(ci));
    }
    const std::size_t row0 = ci * chunk_rows;
    const std::size_t rows = std::min(chunk_rows, streamed.rows() - row0);
    const std::size_t slot =
        ci % static_cast<std::size_t>(inflight);
    if (!options.double_buffer) {
      q.barrier();
    }
    sim::HostChunkEvent& cev = result.timing.chunk_events[ci];
    cev.index = ci;
    cev.row0 = row0;
    cev.rows = rows;

    // Upload this chunk of the streamed operand. Chunk rows are contiguous
    // in the parent matrix, so the upload reads the parent's storage
    // directly; the functional pack task makes its own slice.
    {
      const auto raw = streamed.raw64().subspan(
          row0 * streamed.words64_per_row(),
          rows * streamed.words64_per_row());
      const cl::Event ev = rt::with_retry(
          rec, "h2d", static_cast<std::int64_t>(ci), fault_log, [&] {
            return q.enqueue_write(
                *stream_bufs[slot],
                std::span<const std::byte>(
                    reinterpret_cast<const std::byte*>(raw.data()),
                    raw.size_bytes()));
          });
      result.timing.h2d_s += ev.duration();
      result.timing.h2d_bytes += raw.size_bytes();
      SNP_OBS_COUNT("core.compare.chunks", 1);
      SNP_OBS_COUNT("core.h2d.bytes", raw.size_bytes());
      cev.h2d_start = ev.start;
      cev.h2d_end = ev.end;
    }

    // Kernel: timing from the analytical model, results (when functional)
    // from the identical tiling.
    const sim::KernelShape shape{stream_b ? a.rows() : rows,
                                 stream_b ? rows : b_eff.rows(), k_words};
    const sim::KernelTiming kt = kernel.timing(shape);
    const sim::RooflinePoint rp =
        sim::roofline_for(dev, cfg, op, shape, cfg.pre_negated);
    SNP_OBS_COUNT("core.kernel.wordops",
                  static_cast<double>(shape.m) *
                      static_cast<double>(shape.n) *
                      static_cast<double>(shape.k_words));
    result.timing.wordops +=
        static_cast<std::uint64_t>(shape.m) * shape.n * shape.k_words;
    cl::Buffer* reads[] = {resident_buf.get(), stream_bufs[slot].get()};
    cl::Buffer* writes[] = {c_bufs[slot].get()};
    std::function<void()> functional;
    if (options.functional) {
      CountMatrix* counts =
          options.keep_counts ? &result.counts : nullptr;
      const BitMatrix* streamed_ptr = &streamed;
      const BitMatrix* resident_ptr = stream_b ? &a : &b_eff;
      const std::size_t off = row0;
      const bool sb = stream_b;
      const kern::GpuSnpKernel* kptr = &kernel;
      const auto* callback =
          options.chunk_callback ? &options.chunk_callback : nullptr;
      auto state = std::make_shared<ChunkState>();
      // The pipeline bodies sample the `pool` injection site inside their
      // own retry scope: a transient task fault re-runs the body alone —
      // the virtual clock only moves in the enqueue calls on the calling
      // thread, so recovery cannot perturb simulated timing. The
      // injection check precedes any work, so a retried body is
      // idempotent by construction.
      const auto ci_ix = static_cast<std::int64_t>(ci);
      // Pool tasks honor the cancel token too: each stage checkpoints
      // before doing work, so a batch whose deadline fired mid-pipeline
      // stops at the next task boundary even when the stages run on
      // exec::ThreadPool workers rather than the calling thread.
      const std::shared_ptr<rt::CancelToken> cancel = options.cancel;
      auto pack = [state, streamed_ptr, off, rows, rec, fault_log, cancel,
                   ci_ix]() {
        if (cancel != nullptr) cancel->checkpoint(ci_ix);
        rt::with_retry(rec, "pool.pack", ci_ix, fault_log, [&] {
          rt::maybe_inject(rt::FaultSite::kPool, ci_ix);
          SNP_OBS_SPAN("core.chunk.pack");
          state->chunk = streamed_ptr->row_slice(off, off + rows);
        });
        SNP_OBS_FLIGHT(obs::FlightKind::kChunkPack,
                       obs::current_trace().trace_id, 0, ci_ix, rows);
      };
      auto execute = [state, resident_ptr, sb, kptr, rec, fault_log,
                      cancel, ci_ix]() {
        if (cancel != nullptr) cancel->checkpoint(ci_ix);
        rt::with_retry(rec, "pool.execute", ci_ix, fault_log, [&] {
          rt::maybe_inject(rt::FaultSite::kPool, ci_ix);
          SNP_OBS_SPAN("core.chunk.execute");
          const BitMatrix* ap = sb ? resident_ptr : &state->chunk;
          const BitMatrix* bp = sb ? &state->chunk : resident_ptr;
          state->part = CountMatrix(ap->rows(), bp->rows());
          kptr->execute(*ap, *bp, state->part);
        });
        SNP_OBS_FLIGHT(obs::FlightKind::kChunkExec,
                       obs::current_trace().trace_id, 0, ci_ix,
                       state->part.rows());
      };
      auto drain = [state, counts, off, sb, callback, rec, fault_log,
                    cancel, ci_ix, rows, progress]() {
        if (cancel != nullptr) cancel->checkpoint(ci_ix);
        rt::with_retry(rec, "pool.drain", ci_ix, fault_log, [&] {
          rt::maybe_inject(rt::FaultSite::kPool, ci_ix);
          SNP_OBS_SPAN("core.chunk.drain");
          const CountMatrix& part = state->part;
          if (callback != nullptr) {
            (*callback)(ComputeOptions::ChunkView{off, sb, part});
          }
          if (counts != nullptr) {
            // Scatter the chunk block into the full gamma matrix.
            for (std::size_t i = 0; i < part.rows(); ++i) {
              for (std::size_t j = 0; j < part.cols(); ++j) {
                if (sb) {
                  counts->at(i, off + j) = part.at(i, j);
                } else {
                  counts->at(off + i, j) = part.at(i, j);
                }
              }
            }
          }
        });
        SNP_OBS_FLIGHT(obs::FlightKind::kChunkDrain,
                       obs::current_trace().trace_id, 0, ci_ix, rows);
        // Only after a fully delivered chunk (callback ran, block
        // scattered) does the delivered prefix grow — the degradation
        // rung trusts this to never redeliver or skip rows.
        progress->delivered_rows.store(off + rows);
      };
      if (async) {
        // Bounded in-flight backpressure, failure-aware: a failed chunk
        // task skips every later drain, so the slot releases pending on
        // them never come — poll instead of deadlocking, and let
        // graph->wait() below rethrow the task's exception.
        bool got_slot = false;
        while (!(got_slot =
                     slots->acquire_for(std::chrono::milliseconds(20)))) {
          if (graph->failed()) {
            break;
          }
        }
        if (!got_slot) {
          break;
        }
        sim::HostChunkEvent* evp = &cev;
        evp->host_queued = host_now();
        const auto pack_id = graph->add([pack, evp, host_now]() {
          evp->host_pack_start = host_now();
          pack();
          evp->host_pack_end = host_now();
        });
        const auto exec_id = graph->add(
            [execute, evp, host_now]() {
              evp->host_exec_start = host_now();
              execute();
              evp->host_exec_end = host_now();
            },
            {pack_id});
        std::vector<exec::TaskGraph::TaskId> drain_deps{exec_id};
        if (ci > 0) {
          drain_deps.push_back(prev_drain);
        }
        exec::Semaphore* slots_ptr = slots.get();
        prev_drain = graph->add(
            [drain, evp, host_now, slots_ptr]() {
              evp->host_drain_start = host_now();
              drain();
              evp->host_drain_end = host_now();
              slots_ptr->release();
            },
            drain_deps);
      } else {
        functional = [pack, execute, drain]() {
          pack();
          execute();
          drain();
        };
      }
    }
    const cl::Event evk = rt::with_retry(
        rec, "launch", static_cast<std::int64_t>(ci), fault_log, [&] {
          return q.enqueue_kernel(kt.seconds, reads, writes, functional);
        });
    total_kernel_s += evk.duration();
    kernel_gops_weighted += kt.gops * kt.seconds;
    pct_weighted += kt.pct_of_peak * kt.seconds;
    attainable_weighted += rp.attainable_gops * kt.seconds;
    if (rp.memory_bound) {
      memory_bound_s += kt.seconds;
    }
    active_cores = std::max(active_cores, kt.active_cores);
    cev.kernel_start = evk.start;
    cev.kernel_end = evk.end;

    // Read the C chunk back.
    readback.resize(rows * c_row_bytes);
    const cl::Event evr = rt::with_retry(
        rec, "readback", static_cast<std::int64_t>(ci), fault_log, [&] {
          return q.enqueue_read(
              *c_bufs[slot],
              std::span<std::byte>(readback.data(), readback.size()));
        });
    result.timing.d2h_s += evr.duration();
    result.timing.d2h_bytes += readback.size();
    SNP_OBS_COUNT("core.d2h.bytes", readback.size());
    cev.d2h_start = evr.start;
    cev.d2h_end = evr.end;
  }
  if (async) {
    graph->wait();  // rethrows the first chunk-task exception, if any
  }

  const double end = q.finish();
  result.timing.init_s = options.include_init ? clctx.init_seconds() : 0.0;
  result.timing.end_to_end_s =
      end - (options.include_init ? 0.0 : clctx.init_seconds());
  result.timing.kernel_s = total_kernel_s;
  result.timing.chunks = static_cast<int>(
      bits::ceil_div(streamed.rows(), chunk_rows));
  result.timing.active_cores = active_cores;
  if (total_kernel_s > 0.0) {
    result.timing.kernel_gops = kernel_gops_weighted / total_kernel_s;
    result.timing.pct_of_peak = pct_weighted / total_kernel_s;
    result.timing.attainable_gops = attainable_weighted / total_kernel_s;
    result.timing.memory_bound = memory_bound_s > total_kernel_s / 2;
  }
  const double serial = result.timing.init_s + result.timing.h2d_s +
                        result.timing.kernel_s + result.timing.d2h_s;
  result.timing.overlap_hidden_s =
      std::max(0.0, serial - result.timing.end_to_end_s);
}

CompareResult Context::ld(const BitMatrix& loci,
                          const ComputeOptions& options) {
  return compare(loci, loci, Comparison::kAnd, options);
}

IdentitySearchResult Context::identity_search(
    const BitMatrix& queries, const BitMatrix& database,
    const ComputeOptions& options) {
  IdentitySearchResult out;
  out.comparison = compare(queries, database, Comparison::kXor, options);
  if (options.functional) {
    const CountMatrix& gamma = out.comparison.counts;
    out.best_match.resize(queries.rows());
    out.best_mismatches.resize(queries.rows());
    for (std::size_t qi = 0; qi < queries.rows(); ++qi) {
      const auto row = gamma.raw().subspan(qi * gamma.cols(), gamma.cols());
      const auto best = std::min_element(row.begin(), row.end());
      out.best_match[qi] =
          static_cast<std::size_t>(best - row.begin());
      out.best_mismatches[qi] = *best;
    }
  }
  return out;
}

Context::StreamingSearchResult Context::identity_search_streaming(
    const BitMatrix& queries, const BitMatrix& database, std::size_t top_k,
    const ComputeOptions& options) {
  if (top_k == 0) {
    throw std::invalid_argument(
        "identity_search_streaming: top_k must be positive");
  }
  StreamingSearchResult out;
  out.top.resize(queries.rows());

  ComputeOptions opts = options;
  opts.functional = true;
  opts.keep_counts = false;
  const auto order = [](const stats::MatchCandidate& x,
                        const stats::MatchCandidate& y) {
    return x.mismatches != y.mismatches
               ? x.mismatches < y.mismatches
               : x.reference_index < y.reference_index;
  };
  const double sites = static_cast<double>(database.bit_cols());
  auto fold = [&](std::size_t query, std::size_t ref,
                  std::uint32_t mismatches) {
    auto& best = out.top[query];
    best.push_back({ref, mismatches,
                    static_cast<double>(mismatches) / sites});
    if (best.size() > 4 * top_k) {
      std::partial_sort(
          best.begin(), best.begin() + static_cast<std::ptrdiff_t>(top_k),
          best.end(), order);
      best.resize(top_k);
    }
  };
  // Async compare() delivers chunks from a serialized in-order drain
  // chain, so callbacks never overlap — the mutex makes the fold's
  // thread-safety independent of that scheduling detail.
  std::mutex fold_mu;
  opts.chunk_callback = [&](const ComputeOptions::ChunkView& view) {
    const std::lock_guard<std::mutex> lock(fold_mu);
    if (view.streamed_b) {
      // Usual case: the database streams; this block holds database
      // columns [row0, row0 + cols) for every query row.
      for (std::size_t q = 0; q < view.part.rows(); ++q) {
        for (std::size_t j = 0; j < view.part.cols(); ++j) {
          fold(q, view.row0 + j, view.part.at(q, j));
        }
      }
    } else {
      // Tiny database, large query set: the queries stream; this block
      // holds query rows [row0, row0 + rows) against the full database.
      for (std::size_t i = 0; i < view.part.rows(); ++i) {
        for (std::size_t j = 0; j < view.part.cols(); ++j) {
          fold(view.row0 + i, j, view.part.at(i, j));
        }
      }
    }
  };
  const CompareResult r =
      compare(queries, database, Comparison::kXor, opts);
  out.timing = r.timing;
  for (auto& best : out.top) {
    const std::size_t keep = std::min(top_k, best.size());
    std::partial_sort(best.begin(),
                      best.begin() + static_cast<std::ptrdiff_t>(keep),
                      best.end(), order);
    best.resize(keep);
  }
  return out;
}

Context::GenotypeLdResult Context::genotype_ld(
    const bits::GenotypeMatrix& genotypes, const ComputeOptions& options) {
  if (genotypes.loci() == 0 || genotypes.samples() == 0) {
    throw std::invalid_argument("genotype_ld: empty cohort");
  }
  if (!options.functional) {
    throw std::invalid_argument(
        "genotype_ld: requires functional execution (the EM step consumes "
        "real counts)");
  }
  const BitMatrix pres =
      bits::encode(genotypes, bits::EncodingPlane::kPresence);
  const BitMatrix hom =
      bits::encode(genotypes, bits::EncodingPlane::kHomozygous);

  // Four plane comparisons on this backend; the one-time initialization
  // is charged to the first launch only.
  ComputeOptions first = options;
  ComputeOptions rest = options;
  rest.include_init = false;
  const CompareResult pp = compare(pres, pres, Comparison::kAnd, first);
  const CompareResult hh = compare(hom, hom, Comparison::kAnd, rest);
  const CompareResult ph = compare(pres, hom, Comparison::kAnd, rest);
  const CompareResult hp = compare(hom, pres, Comparison::kAnd, rest);

  GenotypeLdResult out;
  out.loci = genotypes.loci();
  out.timing = pp.timing;
  for (const CompareResult* r : {&hh, &ph, &hp}) {
    out.timing.h2d_s += r->timing.h2d_s;
    out.timing.kernel_s += r->timing.kernel_s;
    out.timing.d2h_s += r->timing.d2h_s;
    out.timing.end_to_end_s += r->timing.end_to_end_s;
    out.timing.h2d_bytes += r->timing.h2d_bytes;
    out.timing.d2h_bytes += r->timing.d2h_bytes;
    out.timing.wordops += r->timing.wordops;
    out.timing.chunks += r->timing.chunks;
  }

  std::vector<std::uint32_t> pres_count(out.loci), hom_count(out.loci);
  for (std::size_t l = 0; l < out.loci; ++l) {
    pres_count[l] = static_cast<std::uint32_t>(pres.row_popcount(l));
    hom_count[l] = static_cast<std::uint32_t>(hom.row_popcount(l));
  }
  out.pairs.resize(out.loci * out.loci);
  for (std::size_t i = 0; i < out.loci; ++i) {
    for (std::size_t j = 0; j < out.loci; ++j) {
      const auto table = stats::table_from_plane_counts(
          pp.counts.at(i, j), hh.counts.at(i, j), ph.counts.at(i, j),
          hp.counts.at(i, j), pres_count[i], hom_count[i], pres_count[j],
          hom_count[j], genotypes.samples());
      out.pairs[i * out.loci + j] = stats::em_ld(table);
    }
  }
  return out;
}

MixtureAnalysisResult Context::mixture_analysis(
    const BitMatrix& profiles, const BitMatrix& mixtures,
    std::uint32_t tolerance, const ComputeOptions& options) {
  MixtureAnalysisResult out;
  out.comparison =
      compare(profiles, mixtures, Comparison::kAndNot, options);
  if (options.functional) {
    const CountMatrix& gamma = out.comparison.counts;
    out.included.resize(mixtures.rows());
    for (std::size_t m = 0; m < mixtures.rows(); ++m) {
      for (std::size_t p = 0; p < profiles.rows(); ++p) {
        if (gamma.at(p, m) <= tolerance) {
          out.included[m].push_back(p);
        }
      }
    }
  }
  return out;
}

Context::StreamingMixtureResult Context::mixture_analysis_streaming(
    const BitMatrix& profiles, const BitMatrix& mixtures,
    std::uint32_t tolerance, const ComputeOptions& options) {
  StreamingMixtureResult out;
  out.included.resize(mixtures.rows());

  ComputeOptions opts = options;
  opts.functional = true;
  opts.keep_counts = false;
  // See identity_search_streaming: deliveries are already serialized
  // in order by the drain chain; the lock keeps the fold self-contained.
  std::mutex fold_mu;
  opts.chunk_callback = [&](const ComputeOptions::ChunkView& view) {
    const std::lock_guard<std::mutex> lock(fold_mu);
    if (view.streamed_b) {
      // Tiny profile set against many mixtures: this block holds mixture
      // columns [row0, row0 + cols) for every profile row.
      for (std::size_t i = 0; i < view.part.rows(); ++i) {
        for (std::size_t j = 0; j < view.part.cols(); ++j) {
          if (view.part.at(i, j) <= tolerance) {
            out.included[view.row0 + j].push_back(i);
          }
        }
      }
    } else {
      // Usual case: the profile database streams; rows are profiles
      // [row0, row0 + rows) against every mixture column.
      for (std::size_t i = 0; i < view.part.rows(); ++i) {
        for (std::size_t j = 0; j < view.part.cols(); ++j) {
          if (view.part.at(i, j) <= tolerance) {
            out.included[j].push_back(view.row0 + i);
          }
        }
      }
    }
  };
  const CompareResult r =
      compare(profiles, mixtures, Comparison::kAndNot, opts);
  out.timing = r.timing;
  for (auto& v : out.included) {
    std::sort(v.begin(), v.end());
  }
  return out;
}

}  // namespace snp
