// snpcmp — public API of the portable SNP-comparison framework.
//
// This is the facade a downstream user programs against:
//
//   auto ctx = snp::Context::gpu("titanv");          // or Context::cpu()
//   auto result = ctx.compare(queries, database, snp::bits::Comparison::kXor);
//   // result.counts is the gamma matrix; result.timing the full breakdown
//
// plus domain wrappers: ld() (Eq. 1), identity_search() (Eq. 2) and
// mixture_analysis() (Eq. 3). GPU execution streams the larger operand
// through device memory in double-buffered chunks, exactly as the paper's
// host code does (Section VI-A), and every stage is timestamped on the
// simulated device's virtual clock.
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "stats/forensic.hpp"

#include "bits/bitmatrix.hpp"
#include "bits/compare.hpp"
#include "bits/genotype.hpp"
#include "cl/clmini.hpp"
#include "model/config.hpp"
#include "model/device.hpp"
#include "rt/recovery.hpp"
#include "sim/timing.hpp"
#include "sim/trace.hpp"
#include "sim/transfer.hpp"
#include "stats/em_ld.hpp"

namespace snp {

struct ComputeOptions {
  /// Override the device's Table II preset configuration.
  std::optional<model::KernelConfig> config;
  /// Produce real counts (true) or run the timing model only (false) —
  /// benches at paper scale (20 M profiles) use the latter.
  bool functional = true;
  /// Double-buffer chunk transfers against compute (Section VI-A).
  bool double_buffer = true;
  /// Charge the one-time OpenCL initialization to the end-to-end time.
  bool include_init = true;
  /// AND-NOT only: store the streamed operand negated and run AND
  /// (the Eq. 3 simplification).
  bool pre_negate = false;
  /// Rows of the streamed operand per chunk; 0 = largest that fits the
  /// device's allocation limits with two in-flight buffers.
  std::size_t chunk_rows = 0;

  /// GPU contexts: run the static analyzer (src/analyze) on the effective
  /// config before launch and attach its findings to
  /// TimingReport::lint_notes. The dataflow proofs run for the real trip
  /// count; warn/info findings never block, but an error-severity finding
  /// (a race, out-of-bounds access, or accumulator overflow the engine
  /// can prove) aborts the launch with analyze::VerificationError (CLI
  /// exit code 3, check ID first).
  bool lint = true;
  /// Launch-time LDS allocation override in 32-bit words for the lint
  /// pass, e.g. an autotuner's proposed tile. 0 = the config's Eq. 4/5
  /// tile. The SNP-BOUND-* proofs verify the staged footprint fits this
  /// allocation before anything launches.
  int lds_words = 0;

  /// Host worker threads for the asynchronous chunk pipeline. 0 (default)
  /// keeps the fully serial legacy path. With threads >= 1, compare()
  /// schedules pack -> kernel -> reduce per chunk on a thread pool
  /// (double-buffered packing), and a dedicated drain task delivers chunk
  /// results strictly in stream order. Results — counts, callback payloads
  /// and delivery order, and the simulated timing — are bit-identical to
  /// the serial path for every thread count; chunk_callback runs on a pool
  /// thread instead of the calling thread.
  std::size_t threads = 0;
  /// Async path only: bound on chunks in flight (scheduled but not yet
  /// drained); the producer blocks once the bound is reached, keeping host
  /// memory proportional to the bound at paper scale. 0 = 2 x threads.
  std::size_t max_inflight_chunks = 0;

  /// One finished chunk of the gamma matrix, delivered in stream order.
  /// `part` is the block of rows [row0, row0+part.rows()) when the A
  /// operand streams, or columns [row0, row0+part.cols()) when B streams.
  struct ChunkView {
    std::size_t row0 = 0;
    bool streamed_b = true;
    const bits::CountMatrix& part;
  };
  /// When set, compare() delivers each chunk's results here as soon as
  /// its (simulated) readback completes. Combine with keep_counts = false
  /// to process paper-scale outputs in bounded memory.
  std::function<void(const ChunkView&)> chunk_callback;
  /// Assemble the full gamma matrix in CompareResult::counts (disable for
  /// streaming consumers; requires a chunk_callback or functional=false).
  bool keep_counts = true;

  /// estimate() only: when non-null, receives the simulated execution
  /// timeline (init + per-chunk h2d/kernel/d2h intervals) — feed it to
  /// sim::write_chrome_trace to visualize the pipeline.
  sim::Timeline* timeline_out = nullptr;

  /// Fault-recovery policy for the device pipeline (docs/robustness.md):
  /// per-operation bounded retry with deterministic backoff, an optional
  /// per-operation deadline, and — under kDegrade/kFailover — a final
  /// GPU->CPU rung that recomputes the undelivered remainder on the host
  /// engine. Recovered runs deliver counts and chunk callbacks
  /// bit-identical to a clean run; every incident is logged to
  /// TimingReport::fault_events. The default (kRetry) only retries; CPU
  /// contexts ignore this.
  rt::RecoveryOptions recovery;

  /// Cooperative cancellation (docs/robustness.md "Request lifecycle").
  /// When set, the pipeline checkpoints the token between chunks and at
  /// the top of every pool task: a fired token (explicit cancel or an
  /// attached expired deadline) aborts the run at the next boundary with
  /// the token's structured status. A kDeadline cancellation is final —
  /// compare() rethrows it without entering the degrade/failover rung,
  /// because recomputing a request that already blew its budget on the
  /// CPU would waste host time to produce an answer nobody is waiting
  /// for. Null = never cancelled (and no extra fault-injector draws).
  std::shared_ptr<rt::CancelToken> cancel;

  /// Per-device circuit breaker (failure_threshold = 0 disables). When
  /// enabled, compare() consults the device's breaker in
  /// rt::BreakerRegistry::global() before the GPU attempt: an open
  /// breaker fast-fails with kCancelled — ahead of the retry rung — so
  /// the degrade/failover ladder routes around a persistently failing
  /// device without paying another doomed attempt. GPU outcomes feed
  /// the breaker (success closes, failure opens; deadline expiry is
  /// neutral — it says nothing about device health).
  rt::BreakerOptions breaker;
};

struct TimingReport {
  double init_s = 0.0;
  double h2d_s = 0.0;     ///< copy-engine busy (host -> device)
  double kernel_s = 0.0;  ///< compute-engine busy
  double d2h_s = 0.0;     ///< copy-engine busy (device -> host)
  double end_to_end_s = 0.0;
  double kernel_gops = 0.0;    ///< achieved Gword-ops/s (32-bit words)
  double pct_of_peak = 0.0;
  /// Roofline-attainable Gword-ops/s for this shape on this device:
  /// min(FU peak, arithmetic intensity x effective bandwidth), weighted
  /// across chunks like kernel_gops. 0 on CPU contexts (no modeled
  /// roofline); compare kernel_gops against it for the achieved-vs-model
  /// efficiency line (obs::EfficiencySummary).
  double attainable_gops = 0.0;
  /// True when the kernel-time-weighted majority of chunks sit left of
  /// the device's ridge point (under the memory roof, sim/roofline.hpp).
  bool memory_bound = false;
  double overlap_hidden_s = 0.0;  ///< transfer time hidden under compute
  /// Exact integer transfer/compute totals for cost attribution
  /// (obs::CostLedger): bytes enqueued host->device / device->host and
  /// 32-bit words popcounted. Mirrors of the core.h2d.bytes /
  /// core.d2h.bytes / core.kernel.wordops counters, but per-run instead
  /// of process-wide — integer so per-request shares can sum back
  /// bit-identically.
  std::uint64_t h2d_bytes = 0;
  std::uint64_t d2h_bytes = 0;
  std::uint64_t wordops = 0;
  int chunks = 0;
  int active_cores = 0;
  std::string device;
  std::string config;
  /// Per-chunk simulated queue/start/end intervals plus, on the async
  /// path, the real host wall-clock of each pack/execute/drain task —
  /// feed to sim::write_host_chrome_trace to visualize the measured host
  /// pipeline (functional compare() only; estimate() fills a
  /// sim::Timeline via ComputeOptions::timeline_out instead).
  std::vector<sim::HostChunkEvent> chunk_events;
  /// Pre-launch static-analysis findings, one "severity  ID  message"
  /// line each (ComputeOptions::lint, GPU contexts only). Error severity
  /// only appears on runs aborted by analyze::VerificationError; clean
  /// launches carry warn/info notes at most.
  std::vector<std::string> lint_notes;
  /// Every fault the recovery machinery observed this run and the action
  /// taken (retry/exhausted/degrade/...), in completion order. Empty on
  /// clean runs.
  std::vector<rt::FaultEvent> fault_events;
  /// True when the GPU pipeline could not finish and the remainder was
  /// recomputed on the CPU rung (ComputeOptions::recovery). The counts
  /// are still exact; only the performance story changed.
  bool degraded = false;
  /// Wall-clock session time (obs::TraceCollector::global().now_us())
  /// sampled when the compare started. The merged Perfetto trace shifts
  /// the device timeline (pid 0, virtual t=0 at compare start) and the
  /// host chunk pipeline (pid 2, wall clock relative to compare start)
  /// by this anchor so all pids share the span clock's origin and flow
  /// arrows stay monotone. 0 when the collector was disabled.
  double trace_anchor_us = 0.0;
};

struct CompareResult {
  bits::CountMatrix counts;  ///< empty when options.functional == false
  TimingReport timing;
};

/// Identity-search output: the gamma matrix plus per-query best matches.
struct IdentitySearchResult {
  CompareResult comparison;
  /// matches[q] = index of the best (fewest-mismatch) database row.
  std::vector<std::size_t> best_match;
  std::vector<std::uint32_t> best_mismatches;
};

/// Mixture-analysis output: gamma[profile, mixture] = foreign alleles.
struct MixtureAnalysisResult {
  CompareResult comparison;
  /// included[m] = profile indices with foreign alleles <= tolerance.
  std::vector<std::vector<std::size_t>> included;
};

class Context {
 public:
  /// Native CPU execution with the BLIS-like engine (real wall-clock
  /// timing, plus the modeled Xeon E5-2620 v2 projection in the report).
  [[nodiscard]] static Context cpu();
  /// Simulated GPU execution ("gtx980", "titanv", "vega64").
  [[nodiscard]] static Context gpu(const std::string& device_name);

  ~Context();
  Context(Context&&) noexcept;
  Context& operator=(Context&&) noexcept;
  Context(const Context&) = delete;
  Context& operator=(const Context&) = delete;

  [[nodiscard]] bool is_gpu() const { return gpu_.has_value(); }
  [[nodiscard]] std::string device_name() const;
  /// GPU contexts only; throws std::logic_error on CPU contexts.
  [[nodiscard]] const model::GpuSpec& gpu_spec() const;

  /// gamma[i,j] = sum_k popc(op(A[i,k], B[j,k])). A and B are row-major
  /// over the shared K (bit) dimension.
  [[nodiscard]] CompareResult compare(const bits::BitMatrix& a,
                                      const bits::BitMatrix& b,
                                      bits::Comparison op,
                                      const ComputeOptions& options = {});

  /// LD co-occurrence counts of every locus pair (Eq. 1): compare(a, a,
  /// AND) with the LD preset.
  [[nodiscard]] CompareResult ld(const bits::BitMatrix& loci,
                                 const ComputeOptions& options = {});

  /// FastID identity search (Eq. 2): queries vs database under XOR.
  [[nodiscard]] IdentitySearchResult identity_search(
      const bits::BitMatrix& queries, const bits::BitMatrix& database,
      const ComputeOptions& options = {});

  /// Memory-bounded identity search: folds each database chunk into
  /// per-query top-k candidate lists as it completes, never materializing
  /// the full gamma matrix (which reaches gigabytes at NDIS scale).
  struct StreamingSearchResult {
    /// top[q] = best candidates for query q, ascending mismatches.
    std::vector<std::vector<stats::MatchCandidate>> top;
    TimingReport timing;
  };
  [[nodiscard]] StreamingSearchResult identity_search_streaming(
      const bits::BitMatrix& queries, const bits::BitMatrix& database,
      std::size_t top_k = 10, const ComputeOptions& options = {});

  /// Genotype-level LD for an *unphased* diploid cohort: encodes the
  /// presence and homozygous planes, runs the four plane comparisons on
  /// this backend, recovers each pair's 3x3 genotype table, and fits
  /// haplotype frequencies by EM (stats/em_ld.hpp). `pairs` is loci x loci
  /// row-major; the timing aggregates the four kernel launches (the
  /// one-time init is charged once).
  struct GenotypeLdResult {
    std::vector<stats::EmLdResult> pairs;
    std::size_t loci = 0;
    TimingReport timing;

    [[nodiscard]] const stats::EmLdResult& at(std::size_t i,
                                              std::size_t j) const {
      return pairs[i * loci + j];
    }
  };
  [[nodiscard]] GenotypeLdResult genotype_ld(
      const bits::GenotypeMatrix& genotypes,
      const ComputeOptions& options = {});

  /// FastID mixture analysis (Eq. 3): for each profile and mixture,
  /// gamma = |profile & ~mixture|. `tolerance` permits a few foreign
  /// alleles when calling contributors.
  [[nodiscard]] MixtureAnalysisResult mixture_analysis(
      const bits::BitMatrix& profiles, const bits::BitMatrix& mixtures,
      std::uint32_t tolerance = 0, const ComputeOptions& options = {});

  /// Memory-bounded mixture analysis: streams the profile database in
  /// chunks and keeps only the consistent profile indices per mixture —
  /// the NDIS-scale form, where the full gamma matrix would be gigabytes.
  struct StreamingMixtureResult {
    std::vector<std::vector<std::size_t>> included;
    TimingReport timing;
  };
  [[nodiscard]] StreamingMixtureResult mixture_analysis_streaming(
      const bits::BitMatrix& profiles, const bits::BitMatrix& mixtures,
      std::uint32_t tolerance = 0, const ComputeOptions& options = {});

  /// The configuration `compare` would use for this op/shape (preset or
  /// override), after grid adaptation — exposed for inspection and benches.
  [[nodiscard]] model::KernelConfig effective_config(
      const bits::BitMatrix& a, const bits::BitMatrix& b,
      bits::Comparison op, const ComputeOptions& options = {}) const;

  /// Data-free end-to-end projection for an (m x k) vs (n x k) comparison:
  /// the same chunking, transfer, and kernel models `compare` uses, without
  /// materializing matrices. This is how paper-scale experiments (e.g. the
  /// >20-million-profile database of Fig. 8) are evaluated. GPU contexts
  /// only; CPU contexts report the modeled Xeon E5-2620 v2 time.
  [[nodiscard]] TimingReport estimate(std::size_t m, std::size_t n,
                                      std::size_t k_bits,
                                      bits::Comparison op,
                                      const ComputeOptions& options = {})
      const;

 private:
  Context();

  [[nodiscard]] CompareResult compare_cpu(const bits::BitMatrix& a,
                                          const bits::BitMatrix& b,
                                          bits::Comparison op,
                                          const ComputeOptions& options);

  /// How far the device pipeline got before failing: the in-order drain
  /// chain makes `delivered_rows` an exact prefix of the streamed
  /// operand, so the degradation rung recomputes only the remainder and
  /// never redelivers a chunk to streaming consumers.
  struct GpuProgress {
    bool stream_b = true;
    std::atomic<std::size_t> delivered_rows{0};
  };
  /// Fills `out` in place (partial results survive a mid-run throw for
  /// the degradation rung to finish from).
  void compare_gpu(const bits::BitMatrix& a, const bits::BitMatrix& b,
                   bits::Comparison op, const ComputeOptions& options,
                   rt::FaultLog* fault_log, GpuProgress* progress,
                   CompareResult& out);

  std::optional<cl::Device> gpu_;
};

}  // namespace snp
