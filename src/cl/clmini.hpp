// snp::cl — a miniature OpenCL-like host runtime over the model-GPU
// simulator.
//
// The paper's framework "standardizes the creation and initialization of
// the various supported OpenCL devices... writing data from host memory to
// device memory, compute kernels that operate on said data, and reading
// results from device memory to host memory are handled in a
// platform-independent manner" (Section V). This module reproduces that
// host-side surface: platforms, devices, contexts, buffers, in-order
// command queues, and events carrying the OpenCL profiling quadruple
// (queued / submitted / start / end) — except that "the device" is the
// simulator, and all timestamps advance on a virtual clock.
//
// Engine semantics match real discrete GPUs: one host-to-device copy
// engine, one compute engine, one device-to-host copy engine, each
// in-order, with cross-engine dependencies carried by buffers. Double
// buffering therefore emerges from enqueue order exactly as it does on
// hardware.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "model/device.hpp"

namespace snp::cl {

class Device {
 public:
  explicit Device(model::GpuSpec spec) : spec_(std::move(spec)) {}

  [[nodiscard]] const std::string& name() const { return spec_.name; }
  [[nodiscard]] const model::GpuSpec& spec() const { return spec_; }
  [[nodiscard]] std::size_t max_alloc_bytes() const {
    return spec_.max_alloc_bytes;
  }
  [[nodiscard]] std::size_t global_bytes() const {
    return spec_.global_bytes;
  }

 private:
  model::GpuSpec spec_;
};

/// Enumerates the simulated platform's devices (the paper's three GPUs).
class Platform {
 public:
  [[nodiscard]] static std::vector<Device> devices();
  [[nodiscard]] static Device device(const std::string& name);
};

/// OpenCL-style profiling timestamps, in seconds of virtual device time
/// (t = 0 at context creation; initialization occupies [0, init_seconds]).
struct Event {
  double queued = 0.0;
  double submitted = 0.0;
  double start = 0.0;
  double end = 0.0;

  [[nodiscard]] double duration() const { return end - start; }
};

class Context;

/// A device buffer with a host-visible backing store (we are simulating;
/// the backing store is what "device memory" resolves to functionally).
class Buffer {
 public:
  Buffer() = default;

  [[nodiscard]] std::size_t size() const { return data_.size(); }
  [[nodiscard]] std::span<std::byte> bytes() { return data_; }
  [[nodiscard]] std::span<const std::byte> bytes() const { return data_; }

  template <typename T>
  [[nodiscard]] std::span<T> as() {
    return {reinterpret_cast<T*>(data_.data()), data_.size() / sizeof(T)};
  }
  template <typename T>
  [[nodiscard]] std::span<const T> as() const {
    return {reinterpret_cast<const T*>(data_.data()),
            data_.size() / sizeof(T)};
  }

 private:
  friend class Context;
  friend class CommandQueue;
  explicit Buffer(std::size_t bytes) : data_(bytes) {}

  std::vector<std::byte> data_;
  double ready_at_ = 0.0;      ///< end of the last operation writing it
  double last_read_at_ = 0.0;  ///< end of the last operation reading it
};

class CommandQueue;

class Context {
 public:
  explicit Context(Device device);
  ~Context();
  Context(const Context&) = delete;
  Context& operator=(const Context&) = delete;

  [[nodiscard]] const Device& device() const { return device_; }

  /// Allocates a device buffer; enforces the per-allocation and total
  /// global-memory limits of the device (Table I), throwing
  /// std::length_error on violation — the condition that forces the
  /// framework to tile large problems (Section VI-E-2).
  [[nodiscard]] std::shared_ptr<Buffer> create_buffer(std::size_t bytes);
  void release_buffer(const std::shared_ptr<Buffer>& buffer);

  [[nodiscard]] std::size_t allocated_bytes() const {
    return allocated_bytes_;
  }
  /// One-time initialization cost charged at context creation (seconds).
  [[nodiscard]] double init_seconds() const { return init_seconds_; }

  [[nodiscard]] CommandQueue& queue();

 private:
  Device device_;
  std::size_t allocated_bytes_ = 0;
  double init_seconds_ = 0.0;
  std::unique_ptr<CommandQueue> queue_;
};

/// In-order queue with profiling enabled. All operations complete
/// immediately in host (functional) terms; timestamps advance on the
/// device's virtual clock.
class CommandQueue {
 public:
  explicit CommandQueue(Context& ctx);

  /// Host -> device bulk copy (clEnqueueWriteBuffer).
  Event enqueue_write(Buffer& dst, std::span<const std::byte> src);

  /// Device -> host bulk copy (clEnqueueReadBuffer).
  Event enqueue_read(const Buffer& src, std::span<std::byte> dst);

  /// Kernel launch: `simulated_seconds` of device compute, with the given
  /// buffer dependencies; `functional` runs immediately on the host to
  /// produce the architectural result. Buffers written become ready at the
  /// kernel's end timestamp.
  Event enqueue_kernel(double simulated_seconds,
                       std::span<Buffer* const> reads,
                       std::span<Buffer* const> writes,
                       const std::function<void()>& functional = {});

  /// Blocks (virtually) until all enqueued work completes; returns the
  /// completion timestamp.
  double finish();

  /// Serializes the queue: nothing enqueued afterwards starts before
  /// everything already enqueued has completed (clEnqueueBarrier). Used to
  /// ablate transfer/compute overlap.
  void barrier();

  [[nodiscard]] double now() const { return host_now_; }
  [[nodiscard]] const Device& device() const { return ctx_.device(); }

 private:
  Context& ctx_;
  double host_now_ = 0.0;  ///< host-side enqueue clock
  double h2d_free_ = 0.0;
  double compute_free_ = 0.0;
  double d2h_free_ = 0.0;
  double last_end_ = 0.0;
};

}  // namespace snp::cl
