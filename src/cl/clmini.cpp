#include "cl/clmini.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "rt/fault.hpp"
#include "rt/status.hpp"
#include "sim/memory.hpp"

namespace snp::cl {

std::vector<Device> Platform::devices() {
  std::vector<Device> out;
  for (auto& spec : model::all_gpus()) {
    out.emplace_back(std::move(spec));
  }
  return out;
}

Device Platform::device(const std::string& name) {
  return Device(model::gpu_by_name(name));
}

Context::Context(Device device) : device_(std::move(device)) {
  init_seconds_ = sim::init_seconds(device_.spec());
  queue_ = std::make_unique<CommandQueue>(*this);
}

Context::~Context() = default;

std::shared_ptr<Buffer> Context::create_buffer(std::size_t bytes) {
  if (bytes == 0) {
    throw std::invalid_argument("create_buffer: zero-size buffer");
  }
  // Injection precedes the accounting mutation so a retried allocation
  // replays against unchanged state.
  rt::maybe_inject(rt::FaultSite::kAlloc);
  if (bytes > device_.max_alloc_bytes()) {
    throw rt::Error(
        rt::ErrorCode::kAlloc,
        "create_buffer: allocation exceeds CL_DEVICE_MAX_MEM_ALLOC_SIZE (" +
            std::to_string(device_.max_alloc_bytes()) + " bytes)");
  }
  if (allocated_bytes_ + bytes > device_.global_bytes()) {
    throw rt::Error(rt::ErrorCode::kAlloc,
                    "create_buffer: device global memory exhausted");
  }
  allocated_bytes_ += bytes;
  return std::shared_ptr<Buffer>(new Buffer(bytes));
}

void Context::release_buffer(const std::shared_ptr<Buffer>& buffer) {
  if (buffer) {
    allocated_bytes_ -= std::min(allocated_bytes_, buffer->size());
  }
}

CommandQueue& Context::queue() { return *queue_; }

CommandQueue::CommandQueue(Context& ctx) : ctx_(ctx) {
  // The virtual clock starts at context creation; nothing may start before
  // initialization completes.
  const double init = ctx_.init_seconds();
  h2d_free_ = compute_free_ = d2h_free_ = init;
  host_now_ = 0.0;
}

Event CommandQueue::enqueue_write(Buffer& dst,
                                  std::span<const std::byte> src) {
  if (src.size() > dst.size()) {
    throw std::out_of_range("enqueue_write: source larger than buffer");
  }
  // All injection sites sit before the first clock/buffer mutation: a
  // retried enqueue must observe bit-identical virtual-clock state.
  rt::maybe_inject(rt::FaultSite::kH2d);
  Event ev;
  ev.queued = host_now_;
  // A write may not begin until prior consumers of this buffer are done
  // (the double-buffering hazard).
  ev.submitted = std::max(h2d_free_, ev.queued);
  ev.start = std::max({ev.submitted, dst.ready_at_, dst.last_read_at_}) +
             sim::pcie_latency_seconds();
  ev.end = ev.start + sim::pcie_seconds(ctx_.device().spec(), src.size());
  h2d_free_ = ev.end;
  dst.ready_at_ = ev.end;
  last_end_ = std::max(last_end_, ev.end);
  std::memcpy(dst.data_.data(), src.data(), src.size());
  return ev;
}

Event CommandQueue::enqueue_read(const Buffer& src,
                                 std::span<std::byte> dst) {
  if (dst.size() > src.size()) {
    throw std::out_of_range("enqueue_read: destination larger than buffer");
  }
  rt::maybe_inject(rt::FaultSite::kReadback);
  Event ev;
  ev.queued = host_now_;
  ev.submitted = std::max(d2h_free_, ev.queued);
  ev.start = std::max(ev.submitted, src.ready_at_) +
             sim::pcie_latency_seconds();
  ev.end = ev.start + sim::pcie_seconds(ctx_.device().spec(), dst.size());
  d2h_free_ = ev.end;
  // Reading marks the buffer busy until the copy completes.
  const_cast<Buffer&>(src).last_read_at_ =
      std::max(src.last_read_at_, ev.end);
  last_end_ = std::max(last_end_, ev.end);
  std::memcpy(dst.data(), src.data_.data(), dst.size());
  return ev;
}

Event CommandQueue::enqueue_kernel(double simulated_seconds,
                                   std::span<Buffer* const> reads,
                                   std::span<Buffer* const> writes,
                                   const std::function<void()>& functional) {
  if (simulated_seconds < 0.0) {
    throw std::invalid_argument("enqueue_kernel: negative duration");
  }
  rt::maybe_inject(rt::FaultSite::kLaunch);
  Event ev;
  ev.queued = host_now_;
  ev.submitted = std::max(compute_free_, ev.queued);
  double deps = ev.submitted;
  for (const Buffer* b : reads) {
    deps = std::max(deps, b->ready_at_);
  }
  for (const Buffer* b : writes) {
    deps = std::max(deps, std::max(b->ready_at_, b->last_read_at_));
  }
  ev.start = deps + sim::launch_seconds(ctx_.device().spec());
  ev.end = ev.start + simulated_seconds;
  compute_free_ = ev.end;
  for (Buffer* b : const_cast<std::span<Buffer* const>&>(reads)) {
    b->last_read_at_ = std::max(b->last_read_at_, ev.end);
  }
  for (Buffer* b : const_cast<std::span<Buffer* const>&>(writes)) {
    b->ready_at_ = ev.end;
  }
  last_end_ = std::max(last_end_, ev.end);
  if (functional) {
    functional();
  }
  return ev;
}

double CommandQueue::finish() {
  host_now_ = std::max(host_now_, last_end_);
  return host_now_;
}

void CommandQueue::barrier() {
  h2d_free_ = std::max(h2d_free_, last_end_);
  compute_free_ = std::max(compute_free_, last_end_);
  d2h_free_ = std::max(d2h_free_, last_end_);
}

}  // namespace snp::cl
