// Synthetic SNP dataset generation.
//
// The paper evaluates on simulated datasets (Fig. 6: "simulated datasets
// that consist of 10,000 SNPs") and a forensic-scale database sized after
// the FBI NDIS (Fig. 8: >20 M profiles). Real forensic data is proprietary,
// so this module generates the synthetic equivalents: genotype matrices
// with a configurable minor-allele-frequency spectrum and LD-block
// correlation structure, forensic profile databases, planted query matches
// (identity search ground truth), and DNA mixtures (union of contributor
// profiles).
#pragma once

#include <cstdint>
#include <vector>

#include "bits/bitmatrix.hpp"
#include "bits/genotype.hpp"
#include "io/rng.hpp"

namespace snp::io {

/// Shape of the per-locus minor-allele-frequency distribution.
enum class MafSpectrum {
  kFixed,    ///< every locus at maf_mean
  kUniform,  ///< U(maf_min, maf_max)
  kUShaped,  ///< skewed toward rare alleles: maf_min + span * u^3
};

struct PopulationParams {
  std::uint64_t seed = 1;
  MafSpectrum spectrum = MafSpectrum::kUShaped;
  double maf_min = 0.01;
  double maf_max = 0.5;
  double maf_mean = 0.2;  ///< used by kFixed
  /// Loci per LD block; within a block, adjacent loci are correlated by
  /// copying a sample's previous-locus allele with probability ld_copy.
  std::size_t ld_block_len = 1;  ///< 1 disables LD structure
  double ld_copy = 0.8;
};

/// Draws a genotype matrix (loci x samples, dosages in {0,1,2}) under
/// Hardy-Weinberg equilibrium with the configured MAF spectrum and optional
/// LD-block structure.
[[nodiscard]] bits::GenotypeMatrix generate_genotypes(std::size_t loci,
                                                      std::size_t samples,
                                                      const PopulationParams&
                                                          params);

/// Per-locus MAF draws, exposed for tests and for stats-layer expectations.
[[nodiscard]] std::vector<double> draw_maf(std::size_t loci,
                                           const PopulationParams& params);

struct ProfileDbParams {
  std::uint64_t seed = 2;
  MafSpectrum spectrum = MafSpectrum::kUShaped;
  double maf_min = 0.05;
  double maf_max = 0.5;
  double maf_mean = 0.2;
};

/// Generates a forensic profile database: `profiles` rows of `snp_sites`
/// presence bits, each site set with its locus MAF probability.
[[nodiscard]] bits::BitMatrix generate_profile_db(std::size_t profiles,
                                                  std::size_t snp_sites,
                                                  const ProfileDbParams&
                                                      params);

/// Copies `db` rows at `rows` into a query matrix (FastID identity-search
/// ground truth: XOR comparison against those rows yields gamma == 0).
[[nodiscard]] bits::BitMatrix extract_queries(const bits::BitMatrix& db,
                                              const std::vector<std::size_t>&
                                                  rows);

/// Builds mixture profiles: each mixture is the bitwise OR of `contributors`
/// randomly chosen database rows. Returns the mixture matrix and the chosen
/// contributor indices per mixture (mixture analysis ground truth: for a
/// contributor r, popc(r & ~mixture) == 0).
struct MixtureSet {
  bits::BitMatrix mixtures;
  std::vector<std::vector<std::size_t>> contributors;
};
[[nodiscard]] MixtureSet generate_mixtures(const bits::BitMatrix& db,
                                           std::size_t mixture_count,
                                           std::size_t contributors,
                                           std::uint64_t seed);

/// Random dense-ish bit matrix (each bit Bernoulli(density)); the generic
/// workload generator used by kernels, benches and property tests.
[[nodiscard]] bits::BitMatrix random_bitmatrix(std::size_t rows,
                                               std::size_t bit_cols,
                                               double density,
                                               std::uint64_t seed,
                                               std::size_t stride_words64 = 1);

}  // namespace snp::io
