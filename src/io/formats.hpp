// On-disk formats.
//
// - SBM1: binary packed bit matrix (the framework's native database format,
//   analogous to PLINK's .bed but word-padded for direct kernel consumption)
// - SCM1: binary count matrix (comparison results)
// - genotype TSV: human-readable loci x samples dosage table for examples
//   and interchange with scripting pipelines.
#pragma once

#include <cstdint>
#include <filesystem>
#include <iosfwd>

#include "bits/bitmatrix.hpp"
#include "bits/genotype.hpp"
#include "rt/status.hpp"

namespace snp::io {

/// Validates that a binary header's promised payload size matches the
/// bytes actually present (seekable streams) or a hard sanity cap
/// (unseekable) before any allocation happens. Returns `expected`.
/// Shared by every binary loader; throws std::runtime_error on mismatch.
std::uint64_t checked_payload_bytes(std::istream& is,
                                    std::uint64_t expected);

void save_bitmatrix(const bits::BitMatrix& m, std::ostream& os);
void save_bitmatrix(const bits::BitMatrix& m,
                    const std::filesystem::path& path);
[[nodiscard]] bits::BitMatrix load_bitmatrix(std::istream& is);
[[nodiscard]] bits::BitMatrix load_bitmatrix(
    const std::filesystem::path& path);
/// Status-returning variant: on failure returns kIoCorrupt with the byte
/// offset at which parsing stopped and leaves `out` untouched or
/// partially filled (do not use it). Never throws on corrupt input.
[[nodiscard]] rt::Status try_load_bitmatrix(std::istream& is,
                                            bits::BitMatrix& out);

void save_countmatrix(const bits::CountMatrix& m, std::ostream& os);
void save_countmatrix(const bits::CountMatrix& m,
                      const std::filesystem::path& path);
[[nodiscard]] bits::CountMatrix load_countmatrix(std::istream& is);
[[nodiscard]] bits::CountMatrix load_countmatrix(
    const std::filesystem::path& path);
[[nodiscard]] rt::Status try_load_countmatrix(std::istream& is,
                                              bits::CountMatrix& out);

void save_genotypes_tsv(const bits::GenotypeMatrix& g, std::ostream& os);
void save_genotypes_tsv(const bits::GenotypeMatrix& g,
                        const std::filesystem::path& path);
[[nodiscard]] bits::GenotypeMatrix load_genotypes_tsv(std::istream& is);
[[nodiscard]] bits::GenotypeMatrix load_genotypes_tsv(
    const std::filesystem::path& path);
[[nodiscard]] rt::Status try_load_genotypes_tsv(std::istream& is,
                                                bits::GenotypeMatrix& out);

}  // namespace snp::io
