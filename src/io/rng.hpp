// Deterministic, seedable RNG used by every generator and test.
//
// Self-contained xoshiro256** (public-domain algorithm by Blackman & Vigna)
// seeded through SplitMix64, so datasets and simulated experiments are
// reproducible across platforms and standard-library versions (std::mt19937
// distributions are not portable across implementations).
#pragma once

#include <cstdint>

namespace snp::io {

class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

class Rng {
 public:
  explicit constexpr Rng(std::uint64_t seed = 0x5eed5eed5eed5eedull) {
    SplitMix64 sm(seed);
    for (auto& s : state_) {
      s = sm.next();
    }
  }

  constexpr std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  constexpr double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound) without modulo bias (rejection method).
  std::uint64_t next_below(std::uint64_t bound) {
    if (bound == 0) {
      return 0;
    }
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      const std::uint64_t x = next_u64();
      if (x >= threshold) {
        return x % bound;
      }
    }
  }

  constexpr bool next_bernoulli(double p) { return next_double() < p; }

  /// Forks an independent stream (for per-row parallel generation).
  [[nodiscard]] Rng fork(std::uint64_t stream) const {
    SplitMix64 sm(state_[0] ^ (stream * 0x9e3779b97f4a7c15ull) ^ state_[3]);
    Rng out(sm.next());
    return out;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4] = {};
};

}  // namespace snp::io
