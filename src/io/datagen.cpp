#include "io/datagen.hpp"

#include <stdexcept>

namespace snp::io {

namespace {

double draw_one_maf(Rng& rng, MafSpectrum spectrum, double lo, double hi,
                    double mean) {
  switch (spectrum) {
    case MafSpectrum::kFixed:
      return mean;
    case MafSpectrum::kUniform:
      return lo + (hi - lo) * rng.next_double();
    case MafSpectrum::kUShaped: {
      const double u = rng.next_double();
      return lo + (hi - lo) * u * u * u;
    }
  }
  return mean;
}

}  // namespace

std::vector<double> draw_maf(std::size_t loci, const PopulationParams& p) {
  if (p.maf_min < 0.0 || p.maf_max > 0.5 || p.maf_min > p.maf_max) {
    throw std::invalid_argument("draw_maf: MAF bounds must satisfy "
                                "0 <= maf_min <= maf_max <= 0.5");
  }
  Rng rng(p.seed);
  std::vector<double> maf(loci);
  for (auto& m : maf) {
    m = draw_one_maf(rng, p.spectrum, p.maf_min, p.maf_max, p.maf_mean);
  }
  return maf;
}

bits::GenotypeMatrix generate_genotypes(std::size_t loci, std::size_t samples,
                                        const PopulationParams& p) {
  std::vector<double> maf = draw_maf(loci, p);
  if (p.ld_block_len > 1) {
    // Loci within an LD block share the block's allele frequency:
    // copying dosages between loci with *different* frequencies would mix
    // two Hardy-Weinberg distributions and manufacture spurious HWE
    // violations (the Wahlund effect).
    for (std::size_t l = 0; l < loci; ++l) {
      maf[l] = maf[l - l % p.ld_block_len];
    }
  }
  bits::GenotypeMatrix g(loci, samples);
  Rng rng = Rng(p.seed).fork(0xda7a);
  for (std::size_t locus = 0; locus < loci; ++locus) {
    const bool block_start =
        p.ld_block_len <= 1 || locus % p.ld_block_len == 0;
    for (std::size_t s = 0; s < samples; ++s) {
      std::uint8_t dosage;
      if (!block_start && rng.next_bernoulli(p.ld_copy)) {
        dosage = g.at(locus - 1, s);  // copy previous locus: LD correlation
      } else {
        // Hardy-Weinberg draw: two independent allele copies.
        const auto a1 =
            static_cast<std::uint8_t>(rng.next_bernoulli(maf[locus]));
        const auto a2 =
            static_cast<std::uint8_t>(rng.next_bernoulli(maf[locus]));
        dosage = static_cast<std::uint8_t>(a1 + a2);
      }
      g.at(locus, s) = dosage;
    }
  }
  return g;
}

bits::BitMatrix generate_profile_db(std::size_t profiles,
                                    std::size_t snp_sites,
                                    const ProfileDbParams& p) {
  PopulationParams mp;
  mp.seed = p.seed;
  mp.spectrum = p.spectrum;
  mp.maf_min = p.maf_min;
  mp.maf_max = p.maf_max;
  mp.maf_mean = p.maf_mean;
  const std::vector<double> maf = draw_maf(snp_sites, mp);

  bits::BitMatrix db(profiles, snp_sites);
  Rng base(p.seed ^ 0x9d0f11e5ull);
  for (std::size_t r = 0; r < profiles; ++r) {
    Rng rng = base.fork(r);
    auto row = db.row64(r);
    for (std::size_t k = 0; k < snp_sites; ++k) {
      if (rng.next_bernoulli(maf[k])) {
        row[k / bits::kBitsPerWord64] |=
            bits::Word64{1} << (k % bits::kBitsPerWord64);
      }
    }
  }
  return db;
}

bits::BitMatrix extract_queries(const bits::BitMatrix& db,
                                const std::vector<std::size_t>& rows) {
  bits::BitMatrix q(rows.size(), db.bit_cols(), db.words64_per_row());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    if (rows[i] >= db.rows()) {
      throw std::out_of_range("extract_queries: row index out of range");
    }
    const auto src = db.row64(rows[i]);
    auto dst = q.row64(i);
    std::copy(src.begin(), src.end(), dst.begin());
  }
  return q;
}

MixtureSet generate_mixtures(const bits::BitMatrix& db,
                             std::size_t mixture_count,
                             std::size_t contributors, std::uint64_t seed) {
  if (db.rows() == 0) {
    throw std::invalid_argument("generate_mixtures: empty database");
  }
  MixtureSet out;
  out.mixtures = bits::BitMatrix(mixture_count, db.bit_cols(),
                                 db.words64_per_row());
  out.contributors.resize(mixture_count);
  Rng rng(seed);
  for (std::size_t m = 0; m < mixture_count; ++m) {
    auto dst = out.mixtures.row64(m);
    for (std::size_t c = 0; c < contributors; ++c) {
      const auto idx =
          static_cast<std::size_t>(rng.next_below(db.rows()));
      out.contributors[m].push_back(idx);
      const auto src = db.row64(idx);
      for (std::size_t w = 0; w < dst.size(); ++w) {
        dst[w] |= src[w];
      }
    }
  }
  return out;
}

bits::BitMatrix random_bitmatrix(std::size_t rows, std::size_t bit_cols,
                                 double density, std::uint64_t seed,
                                 std::size_t stride_words64) {
  bits::BitMatrix m(rows, bit_cols, stride_words64);
  Rng base(seed);
  for (std::size_t r = 0; r < rows; ++r) {
    Rng rng = base.fork(r);
    auto row = m.row64(r);
    if (density >= 0.5 - 1e-12 && density <= 0.5 + 1e-12) {
      // Fast path: unbiased random words, masked to the logical columns.
      const std::size_t full = bit_cols / bits::kBitsPerWord64;
      const std::size_t tail = bit_cols % bits::kBitsPerWord64;
      for (std::size_t w = 0; w < full; ++w) {
        row[w] = rng.next_u64();
      }
      if (tail != 0) {
        row[full] = rng.next_u64() & bits::low_mask64(tail);
      }
    } else {
      for (std::size_t k = 0; k < bit_cols; ++k) {
        if (rng.next_bernoulli(density)) {
          row[k / bits::kBitsPerWord64] |=
              bits::Word64{1} << (k % bits::kBitsPerWord64);
        }
      }
    }
  }
  return m;
}

}  // namespace snp::io
