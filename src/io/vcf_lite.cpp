#include "io/vcf_lite.hpp"

#include "io/checked_load.hpp"

#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace snp::io {

namespace {

std::vector<std::string> split_tabs(const std::string& line) {
  std::vector<std::string> out;
  std::string field;
  std::istringstream ss(line);
  while (std::getline(ss, field, '\t')) {
    out.push_back(field);
  }
  return out;
}

/// Decodes a diploid GT call ("0/1", "1|0", "./."). Returns dosage and
/// whether the call was missing.
std::uint8_t decode_gt(const std::string& gt, bool& missing) {
  missing = false;
  if (gt.size() < 3 || (gt[1] != '/' && gt[1] != '|')) {
    throw std::runtime_error("vcf-lite: malformed GT call '" + gt + "'");
  }
  const char a = gt[0];
  const char b = gt[2];
  if (a == '.' || b == '.') {
    missing = true;
    return 0;
  }
  if ((a != '0' && a != '1') || (b != '0' && b != '1')) {
    throw std::runtime_error(
        "vcf-lite: only biallelic GT calls supported, got '" + gt + "'");
  }
  return static_cast<std::uint8_t>((a - '0') + (b - '0'));
}

const char* gt_string(std::uint8_t dosage) {
  switch (dosage) {
    case 0:
      return "0/0";
    case 1:
      return "0/1";
    case 2:
      return "1/1";
    default:
      throw std::invalid_argument("vcf-lite: dosage out of range");
  }
}

}  // namespace

void save_vcf_lite(const PlinkLiteDataset& ds, std::ostream& os) {
  if (!ds.consistent()) {
    throw std::invalid_argument(
        "vcf-lite: metadata does not match the genotype matrix");
  }
  os << "##fileformat=VCFv4.2\n"
     << "##source=snpcmp\n"
     << "#CHROM\tPOS\tID\tREF\tALT\tQUAL\tFILTER\tINFO\tFORMAT";
  for (const auto& s : ds.samples) {
    os << '\t' << s;
  }
  os << '\n';
  for (std::size_t l = 0; l < ds.loci.size(); ++l) {
    const LocusInfo& info = ds.loci[l];
    os << info.chrom << '\t' << info.pos << '\t' << info.id << '\t'
       << info.ref << '\t' << info.alt << "\t.\tPASS\t.\tGT";
    for (std::size_t s = 0; s < ds.samples.size(); ++s) {
      os << '\t' << gt_string(ds.genotypes.at(l, s));
    }
    os << '\n';
  }
  if (!os) {
    throw std::runtime_error("vcf-lite: write failed");
  }
}

namespace {

PlinkLiteDataset load_vcf_lite_impl(std::istream& is) {
  PlinkLiteDataset ds;
  std::string line;
  bool header_seen = false;
  std::vector<std::vector<std::uint8_t>> rows;

  while (std::getline(is, line)) {
    if (line.empty()) {
      continue;
    }
    if (line.rfind("##", 0) == 0) {
      continue;  // meta line
    }
    if (line.rfind("#CHROM", 0) == 0) {
      const auto fields = split_tabs(line);
      if (fields.size() < 10 || fields[8] != "FORMAT") {
        throw std::runtime_error(
            "vcf-lite: header must carry FORMAT and at least one sample");
      }
      ds.samples.assign(fields.begin() + 9, fields.end());
      header_seen = true;
      continue;
    }
    if (!header_seen) {
      throw std::runtime_error("vcf-lite: record before #CHROM header");
    }
    const auto fields = split_tabs(line);
    if (fields.size() != 9 + ds.samples.size()) {
      throw std::runtime_error("vcf-lite: wrong column count in record");
    }
    LocusInfo info;
    info.chrom = fields[0];
    info.pos = std::stoull(fields[1]);
    info.id = fields[2];
    if (fields[3].size() != 1 || fields[4].size() != 1) {
      throw std::runtime_error(
          "vcf-lite: only single-nucleotide biallelic records supported");
    }
    info.ref = fields[3][0];
    info.alt = fields[4][0];
    if (fields[8] != "GT" && fields[8].rfind("GT:", 0) != 0) {
      throw std::runtime_error("vcf-lite: FORMAT must begin with GT");
    }
    std::vector<std::uint8_t> dosages(ds.samples.size());
    std::size_t locus_missing = 0;
    for (std::size_t s = 0; s < ds.samples.size(); ++s) {
      const std::string& cell = fields[9 + s];
      const std::string gt = cell.substr(0, cell.find(':'));
      bool missing = false;
      dosages[s] = decode_gt(gt, missing);
      locus_missing += missing ? 1u : 0u;
    }
    ds.missing_calls += locus_missing;
    ds.loci.push_back(std::move(info));
    ds.missing_per_locus.push_back(locus_missing);
    rows.push_back(std::move(dosages));
  }
  if (!header_seen) {
    throw std::runtime_error("vcf-lite: missing #CHROM header");
  }
  ds.genotypes = bits::GenotypeMatrix(rows.size(), ds.samples.size());
  for (std::size_t l = 0; l < rows.size(); ++l) {
    for (std::size_t s = 0; s < ds.samples.size(); ++s) {
      ds.genotypes.at(l, s) = rows[l][s];
    }
  }
  return ds;
}

}  // namespace

void save_vcf_lite(const PlinkLiteDataset& ds,
                   const std::filesystem::path& path) {
  std::ofstream os(path);
  if (!os) {
    throw std::runtime_error("vcf-lite: cannot open for writing: " +
                             path.string());
  }
  save_vcf_lite(ds, os);
}

rt::Status try_load_vcf_lite(std::istream& is, PlinkLiteDataset& out) {
  return checked_load(is, [&] { out = load_vcf_lite_impl(is); });
}

PlinkLiteDataset load_vcf_lite(std::istream& is) {
  PlinkLiteDataset ds;
  if (rt::Status st = try_load_vcf_lite(is, ds); !st.ok()) {
    throw rt::Error(std::move(st));
  }
  return ds;
}

PlinkLiteDataset load_vcf_lite(const std::filesystem::path& path) {
  std::ifstream is(path);
  if (!is) {
    throw std::runtime_error("vcf-lite: cannot open for reading: " +
                             path.string());
  }
  return load_vcf_lite(is);
}

}  // namespace snp::io
