// 2-bit packed genotype storage (PLINK .bed-style).
//
// Dosage matrices at biobank scale are kept 2 bits per call (four
// genotypes per byte), a quarter of the naive byte-per-call layout and the
// on-disk format every tool in this space reads. We use PLINK's own code
// points so the intent is recognizable:
//   00 homozygous major (dosage 0)   10 heterozygous (dosage 1)
//   11 homozygous minor (dosage 2)   01 missing
// Layout: locus-major rows, each padded to a whole byte, little-endian
// 2-bit fields — plus a small header with magic and dimensions for the
// on-disk container (.sgp, "snp genotypes packed").
#pragma once

#include <cstdint>
#include <filesystem>
#include <iosfwd>
#include <vector>

#include "bits/genotype.hpp"
#include "rt/status.hpp"

namespace snp::io {

class PackedGenotypes {
 public:
  PackedGenotypes() = default;
  PackedGenotypes(std::size_t loci, std::size_t samples);

  /// Packs a dosage matrix (no missing calls; see the overload below).
  static PackedGenotypes pack(const bits::GenotypeMatrix& g);
  /// Packs with a missing mask: missing[l * samples + s] true encodes the
  /// dedicated missing code point.
  static PackedGenotypes pack(const bits::GenotypeMatrix& g,
                              const std::vector<bool>& missing);

  /// Unpacks to a dosage matrix; missing calls decode to dosage 0 and are
  /// reported per locus through `missing_per_locus` when non-null.
  [[nodiscard]] bits::GenotypeMatrix unpack(
      std::vector<std::size_t>* missing_per_locus = nullptr) const;

  [[nodiscard]] std::size_t loci() const { return loci_; }
  [[nodiscard]] std::size_t samples() const { return samples_; }
  [[nodiscard]] std::size_t size_bytes() const { return data_.size(); }

  /// Genotype code of one call (PLINK 2-bit code points above).
  [[nodiscard]] std::uint8_t code(std::size_t locus,
                                  std::size_t sample) const;
  void set_code(std::size_t locus, std::size_t sample, std::uint8_t code);

  /// Dosage of one call (missing reads as 0).
  [[nodiscard]] std::uint8_t dosage(std::size_t locus,
                                    std::size_t sample) const;
  [[nodiscard]] bool is_missing(std::size_t locus,
                                std::size_t sample) const;

  [[nodiscard]] bool operator==(const PackedGenotypes&) const = default;

  static constexpr std::uint8_t kHomMajor = 0b00;
  static constexpr std::uint8_t kMissing = 0b01;
  static constexpr std::uint8_t kHet = 0b10;
  static constexpr std::uint8_t kHomMinor = 0b11;

 private:
  std::size_t loci_ = 0;
  std::size_t samples_ = 0;
  std::size_t bytes_per_locus_ = 0;
  std::vector<std::uint8_t> data_;
};

void save_packed_genotypes(const PackedGenotypes& p, std::ostream& os);
void save_packed_genotypes(const PackedGenotypes& p,
                           const std::filesystem::path& path);
[[nodiscard]] PackedGenotypes load_packed_genotypes(std::istream& is);
[[nodiscard]] PackedGenotypes load_packed_genotypes(
    const std::filesystem::path& path);
/// Status-returning variant (kIoCorrupt + byte offset on failure).
[[nodiscard]] rt::Status try_load_packed_genotypes(std::istream& is,
                                                   PackedGenotypes& out);

}  // namespace snp::io
