// PLINK-lite: a transposed-text genotype interchange format.
//
// The paper positions its framework against PLINK ("existing high
// performance libraries for population-based analysis such as PLINK do not
// support the use of GPUs"); real deployments would ingest PLINK-style
// files. This module implements a minimal transposed text dialect (one
// locus per line with metadata, followed by per-sample dosages) plus a
// header naming the samples — enough to round-trip datasets with locus
// metadata through the framework and to hand results back to scripting
// pipelines.
//
// Format:
//   #plink-lite v1
//   #samples<TAB>s1<TAB>s2<TAB>...
//   chrom<TAB>id<TAB>pos<TAB>ref<TAB>alt<TAB>g1<TAB>g2<TAB>...
// with g in {0, 1, 2} minor-allele dosage or '.' for missing (decoded as
// dosage 0, counted in the returned missing tally).
#pragma once

#include <cstdint>
#include <filesystem>
#include <iosfwd>
#include <string>
#include <vector>

#include "bits/genotype.hpp"
#include "rt/status.hpp"

namespace snp::io {

struct LocusInfo {
  std::string chrom;
  std::string id;
  std::uint64_t pos = 0;
  char ref = 'A';
  char alt = 'G';
};

struct PlinkLiteDataset {
  std::vector<LocusInfo> loci;        ///< one per genotype row
  std::vector<std::string> samples;   ///< one per genotype column
  bits::GenotypeMatrix genotypes;
  std::size_t missing_calls = 0;      ///< '.' entries seen on load
  /// Missing calls per locus (empty when the source had none), consumed
  /// by stats::qc_report.
  std::vector<std::size_t> missing_per_locus;

  [[nodiscard]] bool consistent() const {
    return loci.size() == genotypes.loci() &&
           samples.size() == genotypes.samples();
  }
};

void save_plink_lite(const PlinkLiteDataset& ds, std::ostream& os);
void save_plink_lite(const PlinkLiteDataset& ds,
                     const std::filesystem::path& path);
[[nodiscard]] PlinkLiteDataset load_plink_lite(std::istream& is);
[[nodiscard]] PlinkLiteDataset load_plink_lite(
    const std::filesystem::path& path);
/// Status-returning variant (kIoCorrupt + byte offset on failure).
[[nodiscard]] rt::Status try_load_plink_lite(std::istream& is,
                                             PlinkLiteDataset& out);

/// Wraps a bare genotype matrix with synthetic metadata (rs-ids, evenly
/// spaced positions, generated sample names) so generated datasets can be
/// exported.
[[nodiscard]] PlinkLiteDataset with_synthetic_metadata(
    bits::GenotypeMatrix genotypes, const std::string& chrom = "1",
    std::uint64_t start_pos = 10'000, std::uint64_t spacing = 1'000);

}  // namespace snp::io
