#include "io/cohort_ops.hpp"

#include <algorithm>
#include <set>
#include <stdexcept>

namespace snp::io {

namespace {

void check_consistent(const PlinkLiteDataset& ds, const char* who) {
  if (!ds.consistent()) {
    throw std::invalid_argument(std::string(who) +
                                ": inconsistent dataset");
  }
}

std::size_t missing_at(const PlinkLiteDataset& ds, std::size_t locus) {
  return ds.missing_per_locus.empty() ? 0 : ds.missing_per_locus[locus];
}

}  // namespace

PlinkLiteDataset merge_loci(const PlinkLiteDataset& a,
                            const PlinkLiteDataset& b) {
  check_consistent(a, "merge_loci");
  check_consistent(b, "merge_loci");
  if (a.samples != b.samples) {
    throw std::invalid_argument(
        "merge_loci: datasets must cover the same samples in order");
  }
  std::set<std::string> ids;
  for (const auto& l : a.loci) {
    ids.insert(l.id);
  }
  for (const auto& l : b.loci) {
    if (!ids.insert(l.id).second) {
      throw std::invalid_argument("merge_loci: duplicate locus id " +
                                  l.id);
    }
  }
  PlinkLiteDataset out;
  out.samples = a.samples;
  out.loci = a.loci;
  out.loci.insert(out.loci.end(), b.loci.begin(), b.loci.end());
  out.genotypes =
      bits::GenotypeMatrix(a.loci.size() + b.loci.size(),
                           a.samples.size());
  out.missing_per_locus.reserve(out.loci.size());
  for (std::size_t l = 0; l < a.loci.size(); ++l) {
    out.missing_per_locus.push_back(missing_at(a, l));
    for (std::size_t s = 0; s < a.samples.size(); ++s) {
      out.genotypes.at(l, s) = a.genotypes.at(l, s);
    }
  }
  for (std::size_t l = 0; l < b.loci.size(); ++l) {
    out.missing_per_locus.push_back(missing_at(b, l));
    for (std::size_t s = 0; s < b.samples.size(); ++s) {
      out.genotypes.at(a.loci.size() + l, s) = b.genotypes.at(l, s);
    }
  }
  out.missing_calls = a.missing_calls + b.missing_calls;
  return out;
}

PlinkLiteDataset merge_samples(const PlinkLiteDataset& a,
                               const PlinkLiteDataset& b) {
  check_consistent(a, "merge_samples");
  check_consistent(b, "merge_samples");
  if (a.loci.size() != b.loci.size()) {
    throw std::invalid_argument(
        "merge_samples: datasets must cover the same loci");
  }
  for (std::size_t l = 0; l < a.loci.size(); ++l) {
    if (a.loci[l].id != b.loci[l].id || a.loci[l].pos != b.loci[l].pos) {
      throw std::invalid_argument(
          "merge_samples: locus mismatch at index " + std::to_string(l));
    }
  }
  std::set<std::string> names(a.samples.begin(), a.samples.end());
  for (const auto& s : b.samples) {
    if (!names.insert(s).second) {
      throw std::invalid_argument("merge_samples: duplicate sample " + s);
    }
  }
  PlinkLiteDataset out;
  out.loci = a.loci;
  out.samples = a.samples;
  out.samples.insert(out.samples.end(), b.samples.begin(),
                     b.samples.end());
  out.genotypes =
      bits::GenotypeMatrix(a.loci.size(), out.samples.size());
  out.missing_per_locus.reserve(a.loci.size());
  for (std::size_t l = 0; l < a.loci.size(); ++l) {
    out.missing_per_locus.push_back(missing_at(a, l) + missing_at(b, l));
    for (std::size_t s = 0; s < a.samples.size(); ++s) {
      out.genotypes.at(l, s) = a.genotypes.at(l, s);
    }
    for (std::size_t s = 0; s < b.samples.size(); ++s) {
      out.genotypes.at(l, a.samples.size() + s) = b.genotypes.at(l, s);
    }
  }
  out.missing_calls = a.missing_calls + b.missing_calls;
  return out;
}

PlinkLiteDataset subset_samples(const PlinkLiteDataset& ds,
                                const std::vector<std::string>& names) {
  check_consistent(ds, "subset_samples");
  std::vector<std::size_t> cols;
  cols.reserve(names.size());
  for (const auto& name : names) {
    const auto it =
        std::find(ds.samples.begin(), ds.samples.end(), name);
    if (it == ds.samples.end()) {
      throw std::invalid_argument("subset_samples: unknown sample " +
                                  name);
    }
    cols.push_back(static_cast<std::size_t>(it - ds.samples.begin()));
  }
  PlinkLiteDataset out;
  out.loci = ds.loci;
  out.samples = names;
  out.genotypes = bits::GenotypeMatrix(ds.loci.size(), names.size());
  for (std::size_t l = 0; l < ds.loci.size(); ++l) {
    for (std::size_t s = 0; s < cols.size(); ++s) {
      out.genotypes.at(l, s) = ds.genotypes.at(l, cols[s]);
    }
  }
  // Per-locus missing counts are column-dependent and the source does not
  // record which columns were missing; drop them rather than guess.
  return out;
}

PlinkLiteDataset subset_loci(const PlinkLiteDataset& ds,
                             const std::vector<std::size_t>& indices) {
  check_consistent(ds, "subset_loci");
  PlinkLiteDataset out;
  out.samples = ds.samples;
  out.genotypes =
      bits::GenotypeMatrix(indices.size(), ds.samples.size());
  out.loci.reserve(indices.size());
  out.missing_per_locus.reserve(indices.size());
  std::size_t row = 0;
  for (const std::size_t l : indices) {
    if (l >= ds.loci.size()) {
      throw std::out_of_range("subset_loci: index out of range");
    }
    out.loci.push_back(ds.loci[l]);
    const std::size_t miss = missing_at(ds, l);
    out.missing_per_locus.push_back(miss);
    out.missing_calls += miss;
    for (std::size_t s = 0; s < ds.samples.size(); ++s) {
      out.genotypes.at(row, s) = ds.genotypes.at(l, s);
    }
    ++row;
  }
  return out;
}

}  // namespace snp::io
