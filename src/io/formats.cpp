#include "io/formats.hpp"

#include "io/checked_load.hpp"

#include "obs/obs.hpp"

#include <array>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

namespace snp::io {

namespace {

constexpr std::array<char, 4> kBitMagic = {'S', 'B', 'M', '1'};
constexpr std::array<char, 4> kCountMagic = {'S', 'C', 'M', '1'};

void write_u64(std::ostream& os, std::uint64_t v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

std::uint64_t read_u64(std::istream& is) {
  std::uint64_t v = 0;
  is.read(reinterpret_cast<char*>(&v), sizeof(v));
  if (!is) {
    throw std::runtime_error("snp::io: truncated stream");
  }
  return v;
}

void expect_magic(std::istream& is, const std::array<char, 4>& magic,
                  const char* what) {
  std::array<char, 4> got{};
  is.read(got.data(), got.size());
  if (!is || got != magic) {
    throw std::runtime_error(std::string("snp::io: bad magic for ") + what);
  }
}

}  // namespace

std::uint64_t checked_payload_bytes(std::istream& is,
                                    std::uint64_t expected) {
  // Guard against corrupted headers demanding absurd allocations (a fuzz
  // finding): when the stream is seekable, the payload must match the
  // remaining bytes exactly; otherwise fall back to a hard sanity cap.
  const auto here = is.tellg();
  if (here != std::streampos(-1)) {
    is.seekg(0, std::ios::end);
    const auto end = is.tellg();
    is.seekg(here);
    if (end != std::streampos(-1)) {
      const auto remaining =
          static_cast<std::uint64_t>(end - here);
      if (remaining != expected) {
        throw std::runtime_error(
            "snp::io: header promises " + std::to_string(expected) +
            " payload bytes but the stream holds " +
            std::to_string(remaining));
      }
      return expected;
    }
  }
  constexpr std::uint64_t kSanityCap = 8ull << 30;  // 8 GiB
  if (expected > kSanityCap) {
    throw std::runtime_error(
        "snp::io: implausible header (payload over 8 GiB on an "
        "unseekable stream)");
  }
  return expected;
}

namespace {

std::ofstream open_out(const std::filesystem::path& path) {
  std::ofstream os(path, std::ios::binary);
  if (!os) {
    throw std::runtime_error("snp::io: cannot open for writing: " +
                             path.string());
  }
  return os;
}

std::ifstream open_in(const std::filesystem::path& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) {
    throw std::runtime_error("snp::io: cannot open for reading: " +
                             path.string());
  }
  return is;
}

}  // namespace

void save_bitmatrix(const bits::BitMatrix& m, std::ostream& os) {
  SNP_OBS_SPAN("io.save_bitmatrix");
  SNP_OBS_COUNT("io.save.bytes", m.raw64().size_bytes());
  os.write(kBitMagic.data(), kBitMagic.size());
  write_u64(os, m.rows());
  write_u64(os, m.bit_cols());
  write_u64(os, m.words64_per_row());
  const auto raw = m.raw64();
  os.write(reinterpret_cast<const char*>(raw.data()),
           static_cast<std::streamsize>(raw.size_bytes()));
  if (!os) {
    throw std::runtime_error("snp::io: write failed (bit matrix)");
  }
}

namespace {

bits::BitMatrix load_bitmatrix_impl(std::istream& is) {
  SNP_OBS_SPAN("io.load_bitmatrix");
  expect_magic(is, kBitMagic, "bit matrix");
  const std::uint64_t rows = read_u64(is);
  const std::uint64_t bit_cols = read_u64(is);
  const std::uint64_t stride = read_u64(is);
  constexpr std::uint64_t kDimCap = 1ull << 40;
  if (stride == 0 || rows > kDimCap || stride > kDimCap ||
      bit_cols > kDimCap ||
      stride < bits::ceil_div(bit_cols, bits::kBitsPerWord64)) {
    throw std::runtime_error("snp::io: corrupt bit-matrix header");
  }
  (void)checked_payload_bytes(is, rows * stride * 8);
  bits::BitMatrix m(rows, bit_cols, stride);
  std::vector<bits::Word64> buf(rows * stride);
  is.read(reinterpret_cast<char*>(buf.data()),
          static_cast<std::streamsize>(buf.size() * sizeof(bits::Word64)));
  if (!is) {
    throw std::runtime_error("snp::io: truncated bit matrix");
  }
  for (std::uint64_t r = 0; r < rows; ++r) {
    auto dst = m.row64(r);
    std::memcpy(dst.data(), buf.data() + r * stride,
                stride * sizeof(bits::Word64));
  }
  SNP_OBS_COUNT("io.load.bytes", buf.size() * sizeof(bits::Word64));
  if (!m.padding_is_zero()) {
    // Set bits in the word-padding region cannot come from the writer —
    // this is bit-flip corruption made detectable by construction.
    throw std::runtime_error(
        "snp::io: bit matrix violates the zero-padding invariant");
  }
  return m;
}

}  // namespace

rt::Status try_load_bitmatrix(std::istream& is, bits::BitMatrix& out) {
  return checked_load(is, [&] { out = load_bitmatrix_impl(is); });
}

bits::BitMatrix load_bitmatrix(std::istream& is) {
  bits::BitMatrix m;
  if (rt::Status st = try_load_bitmatrix(is, m); !st.ok()) {
    throw rt::Error(std::move(st));
  }
  return m;
}

void save_countmatrix(const bits::CountMatrix& m, std::ostream& os) {
  SNP_OBS_SPAN("io.save_countmatrix");
  SNP_OBS_COUNT("io.save.bytes", m.raw().size_bytes());
  os.write(kCountMagic.data(), kCountMagic.size());
  write_u64(os, m.rows());
  write_u64(os, m.cols());
  const auto raw = m.raw();
  os.write(reinterpret_cast<const char*>(raw.data()),
           static_cast<std::streamsize>(raw.size_bytes()));
  if (!os) {
    throw std::runtime_error("snp::io: write failed (count matrix)");
  }
}

namespace {

bits::CountMatrix load_countmatrix_impl(std::istream& is) {
  SNP_OBS_SPAN("io.load_countmatrix");
  expect_magic(is, kCountMagic, "count matrix");
  const std::uint64_t rows = read_u64(is);
  const std::uint64_t cols = read_u64(is);
  constexpr std::uint64_t kDimCap = 1ull << 40;
  if (rows > kDimCap || cols > kDimCap) {
    throw std::runtime_error("snp::io: corrupt count-matrix header");
  }
  (void)checked_payload_bytes(is, rows * cols * 4);
  bits::CountMatrix m(rows, cols);
  auto raw = m.raw();
  is.read(reinterpret_cast<char*>(raw.data()),
          static_cast<std::streamsize>(raw.size_bytes()));
  if (!is) {
    throw std::runtime_error("snp::io: truncated count matrix");
  }
  SNP_OBS_COUNT("io.load.bytes", raw.size_bytes());
  return m;
}

}  // namespace

rt::Status try_load_countmatrix(std::istream& is, bits::CountMatrix& out) {
  return checked_load(is, [&] { out = load_countmatrix_impl(is); });
}

bits::CountMatrix load_countmatrix(std::istream& is) {
  bits::CountMatrix m;
  if (rt::Status st = try_load_countmatrix(is, m); !st.ok()) {
    throw rt::Error(std::move(st));
  }
  return m;
}

void save_genotypes_tsv(const bits::GenotypeMatrix& g, std::ostream& os) {
  os << "#loci\t" << g.loci() << "\tsamples\t" << g.samples() << '\n';
  for (std::size_t locus = 0; locus < g.loci(); ++locus) {
    for (std::size_t s = 0; s < g.samples(); ++s) {
      os << static_cast<int>(g.at(locus, s))
         << (s + 1 == g.samples() ? '\n' : '\t');
    }
  }
  if (!os) {
    throw std::runtime_error("snp::io: write failed (genotype tsv)");
  }
}

namespace {

bits::GenotypeMatrix load_genotypes_tsv_impl(std::istream& is) {
  std::string header;
  if (!std::getline(is, header)) {
    throw std::runtime_error("snp::io: missing genotype tsv header");
  }
  std::istringstream hs(header);
  std::string tag1, tag2;
  std::size_t loci = 0, samples = 0;
  hs >> tag1 >> loci >> tag2 >> samples;
  if (tag1 != "#loci" || tag2 != "samples") {
    throw std::runtime_error("snp::io: bad genotype tsv header");
  }
  bits::GenotypeMatrix g(loci, samples);
  for (std::size_t locus = 0; locus < loci; ++locus) {
    for (std::size_t s = 0; s < samples; ++s) {
      int v = -1;
      if (!(is >> v) || v < 0 || v > 2) {
        throw std::runtime_error("snp::io: bad genotype value");
      }
      g.at(locus, s) = static_cast<std::uint8_t>(v);
    }
  }
  return g;
}

}  // namespace

rt::Status try_load_genotypes_tsv(std::istream& is,
                                  bits::GenotypeMatrix& out) {
  return checked_load(is, [&] { out = load_genotypes_tsv_impl(is); });
}

bits::GenotypeMatrix load_genotypes_tsv(std::istream& is) {
  bits::GenotypeMatrix g;
  if (rt::Status st = try_load_genotypes_tsv(is, g); !st.ok()) {
    throw rt::Error(std::move(st));
  }
  return g;
}

void save_bitmatrix(const bits::BitMatrix& m,
                    const std::filesystem::path& path) {
  auto os = open_out(path);
  save_bitmatrix(m, os);
}

bits::BitMatrix load_bitmatrix(const std::filesystem::path& path) {
  auto is = open_in(path);
  return load_bitmatrix(is);
}

void save_countmatrix(const bits::CountMatrix& m,
                      const std::filesystem::path& path) {
  auto os = open_out(path);
  save_countmatrix(m, os);
}

bits::CountMatrix load_countmatrix(const std::filesystem::path& path) {
  auto is = open_in(path);
  return load_countmatrix(is);
}

void save_genotypes_tsv(const bits::GenotypeMatrix& g,
                        const std::filesystem::path& path) {
  auto os = open_out(path);
  save_genotypes_tsv(g, os);
}

bits::GenotypeMatrix load_genotypes_tsv(const std::filesystem::path& path) {
  auto is = open_in(path);
  return load_genotypes_tsv(is);
}

}  // namespace snp::io
