// Status-returning loader adapter.
//
// The forensic use case (arXiv:1707.00516) makes silently-misread input
// the worst failure mode an ingest path can have: every reader in this
// module must detect truncation and bit-flips and say *where* parsing
// stopped. This header is the shared bridge between the historical
// throwing loaders and the rt::Status world: `checked_load` runs a loader
// body, samples the `io` fault-injection site first, and converts any
// failure into an rt::Status — kIoCorrupt carrying the byte offset at
// which the stream stood when parsing gave up, unless the body already
// threw a classified rt::Error.
#pragma once

#include <cstdint>
#include <istream>
#include <optional>

#include "rt/fault.hpp"
#include "rt/status.hpp"

namespace snp::io {

/// Byte offset the stream currently points at, clearing failbits first so
/// a truncated read still reports the position it stopped at (0 when the
/// stream cannot tell at all).
inline std::uint64_t stream_offset(std::istream& is) {
  is.clear();
  const auto pos = is.tellg();
  return pos == std::streampos(-1) ? 0 : static_cast<std::uint64_t>(pos);
}

/// Runs `body` (a throwing loader) and folds the outcome into a Status.
template <typename Fn>
[[nodiscard]] rt::Status checked_load(std::istream& is, Fn&& body) {
  auto& injector = rt::FaultInjector::global();
  if (injector.armed()) {
    if (std::optional<rt::Status> st = injector.check(rt::FaultSite::kIo)) {
      st->offset = stream_offset(is);
      return *st;
    }
  }
  try {
    body();
    return rt::Status::success();
  } catch (const rt::Error& e) {
    return e.status();
  } catch (const std::exception& e) {
    return rt::Status::failure(rt::ErrorCode::kIoCorrupt, e.what(),
                               stream_offset(is));
  }
}

}  // namespace snp::io
