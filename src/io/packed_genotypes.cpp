#include "io/packed_genotypes.hpp"

#include "io/checked_load.hpp"
#include "io/formats.hpp"

#include <array>
#include <fstream>
#include <istream>
#include <ostream>
#include <stdexcept>

namespace snp::io {

namespace {

constexpr std::array<char, 4> kMagic = {'S', 'G', 'P', '1'};

std::uint8_t dosage_to_code(std::uint8_t dosage) {
  switch (dosage) {
    case 0:
      return PackedGenotypes::kHomMajor;
    case 1:
      return PackedGenotypes::kHet;
    case 2:
      return PackedGenotypes::kHomMinor;
    default:
      throw std::invalid_argument("PackedGenotypes: dosage out of range");
  }
}

std::uint8_t code_to_dosage(std::uint8_t code) {
  switch (code) {
    case PackedGenotypes::kHomMajor:
    case PackedGenotypes::kMissing:
      return 0;
    case PackedGenotypes::kHet:
      return 1;
    case PackedGenotypes::kHomMinor:
      return 2;
    default:
      return 0;
  }
}

}  // namespace

PackedGenotypes::PackedGenotypes(std::size_t loci, std::size_t samples)
    : loci_(loci),
      samples_(samples),
      bytes_per_locus_((samples + 3) / 4),
      data_(loci * bytes_per_locus_, 0) {}

std::uint8_t PackedGenotypes::code(std::size_t locus,
                                   std::size_t sample) const {
  if (locus >= loci_ || sample >= samples_) {
    throw std::out_of_range("PackedGenotypes::code: index out of range");
  }
  const std::uint8_t byte =
      data_[locus * bytes_per_locus_ + sample / 4];
  return static_cast<std::uint8_t>((byte >> (2 * (sample % 4))) & 0b11);
}

void PackedGenotypes::set_code(std::size_t locus, std::size_t sample,
                               std::uint8_t c) {
  if (locus >= loci_ || sample >= samples_) {
    throw std::out_of_range(
        "PackedGenotypes::set_code: index out of range");
  }
  if (c > 0b11) {
    throw std::invalid_argument("PackedGenotypes::set_code: bad code");
  }
  std::uint8_t& byte = data_[locus * bytes_per_locus_ + sample / 4];
  const int shift = 2 * static_cast<int>(sample % 4);
  byte = static_cast<std::uint8_t>(
      (byte & ~(0b11 << shift)) | (c << shift));
}

std::uint8_t PackedGenotypes::dosage(std::size_t locus,
                                     std::size_t sample) const {
  return code_to_dosage(code(locus, sample));
}

bool PackedGenotypes::is_missing(std::size_t locus,
                                 std::size_t sample) const {
  return code(locus, sample) == kMissing;
}

PackedGenotypes PackedGenotypes::pack(const bits::GenotypeMatrix& g) {
  return pack(g, {});
}

PackedGenotypes PackedGenotypes::pack(const bits::GenotypeMatrix& g,
                                      const std::vector<bool>& missing) {
  if (!missing.empty() && missing.size() != g.loci() * g.samples()) {
    throw std::invalid_argument(
        "PackedGenotypes::pack: missing mask must be loci * samples");
  }
  PackedGenotypes p(g.loci(), g.samples());
  for (std::size_t l = 0; l < g.loci(); ++l) {
    for (std::size_t s = 0; s < g.samples(); ++s) {
      const bool miss =
          !missing.empty() && missing[l * g.samples() + s];
      p.set_code(l, s, miss ? kMissing : dosage_to_code(g.at(l, s)));
    }
  }
  return p;
}

bits::GenotypeMatrix PackedGenotypes::unpack(
    std::vector<std::size_t>* missing_per_locus) const {
  bits::GenotypeMatrix g(loci_, samples_);
  if (missing_per_locus != nullptr) {
    missing_per_locus->assign(loci_, 0);
  }
  for (std::size_t l = 0; l < loci_; ++l) {
    for (std::size_t s = 0; s < samples_; ++s) {
      const std::uint8_t c = code(l, s);
      g.at(l, s) = code_to_dosage(c);
      if (c == kMissing && missing_per_locus != nullptr) {
        ++(*missing_per_locus)[l];
      }
    }
  }
  return g;
}

void save_packed_genotypes(const PackedGenotypes& p, std::ostream& os) {
  os.write(kMagic.data(), kMagic.size());
  const std::uint64_t loci = p.loci();
  const std::uint64_t samples = p.samples();
  os.write(reinterpret_cast<const char*>(&loci), sizeof(loci));
  os.write(reinterpret_cast<const char*>(&samples), sizeof(samples));
  // Stream through the accessor so on-disk bytes are canonical (padding
  // two-bit fields always zero) regardless of in-memory history.
  for (std::size_t l = 0; l < p.loci(); ++l) {
    for (std::size_t s = 0; s < p.samples(); s += 4) {
      std::uint8_t byte = 0;
      for (std::size_t k = 0; k < 4 && s + k < p.samples(); ++k) {
        byte = static_cast<std::uint8_t>(
            byte | (p.code(l, s + k) << (2 * k)));
      }
      os.put(static_cast<char>(byte));
    }
  }
  if (!os) {
    throw std::runtime_error("packed genotypes: write failed");
  }
}

namespace {

PackedGenotypes load_packed_genotypes_impl(std::istream& is) {
  std::array<char, 4> magic{};
  is.read(magic.data(), magic.size());
  if (!is || magic != kMagic) {
    throw std::runtime_error("packed genotypes: bad magic");
  }
  std::uint64_t loci = 0, samples = 0;
  is.read(reinterpret_cast<char*>(&loci), sizeof(loci));
  is.read(reinterpret_cast<char*>(&samples), sizeof(samples));
  if (!is) {
    throw std::runtime_error("packed genotypes: truncated header");
  }
  constexpr std::uint64_t kDimCap = 1ull << 40;
  if (loci > kDimCap || samples > kDimCap) {
    throw std::runtime_error("packed genotypes: implausible header");
  }
  (void)checked_payload_bytes(is, loci * ((samples + 3) / 4));
  PackedGenotypes p(loci, samples);
  const std::size_t bytes_per_locus = (samples + 3) / 4;
  std::vector<char> row(bytes_per_locus);
  for (std::uint64_t l = 0; l < loci; ++l) {
    is.read(row.data(), static_cast<std::streamsize>(row.size()));
    if (!is) {
      throw std::runtime_error("packed genotypes: truncated data");
    }
    for (std::uint64_t s = 0; s < samples; ++s) {
      const auto byte = static_cast<std::uint8_t>(row[s / 4]);
      p.set_code(l, s,
                 static_cast<std::uint8_t>((byte >> (2 * (s % 4))) &
                                           0b11));
    }
  }
  return p;
}

}  // namespace

rt::Status try_load_packed_genotypes(std::istream& is,
                                     PackedGenotypes& out) {
  return checked_load(is, [&] { out = load_packed_genotypes_impl(is); });
}

PackedGenotypes load_packed_genotypes(std::istream& is) {
  PackedGenotypes p;
  if (rt::Status st = try_load_packed_genotypes(is, p); !st.ok()) {
    throw rt::Error(std::move(st));
  }
  return p;
}

void save_packed_genotypes(const PackedGenotypes& p,
                           const std::filesystem::path& path) {
  std::ofstream os(path, std::ios::binary);
  if (!os) {
    throw std::runtime_error("packed genotypes: cannot open " +
                             path.string());
  }
  save_packed_genotypes(p, os);
}

PackedGenotypes load_packed_genotypes(const std::filesystem::path& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) {
    throw std::runtime_error("packed genotypes: cannot open " +
                             path.string());
  }
  return load_packed_genotypes(is);
}

}  // namespace snp::io
