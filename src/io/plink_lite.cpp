#include "io/plink_lite.hpp"

#include "io/checked_load.hpp"

#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace snp::io {

namespace {

std::ofstream open_out(const std::filesystem::path& path) {
  std::ofstream os(path);
  if (!os) {
    throw std::runtime_error("plink-lite: cannot open for writing: " +
                             path.string());
  }
  return os;
}

std::ifstream open_in(const std::filesystem::path& path) {
  std::ifstream is(path);
  if (!is) {
    throw std::runtime_error("plink-lite: cannot open for reading: " +
                             path.string());
  }
  return is;
}

}  // namespace

void save_plink_lite(const PlinkLiteDataset& ds, std::ostream& os) {
  if (!ds.consistent()) {
    throw std::invalid_argument(
        "plink-lite: metadata does not match the genotype matrix");
  }
  os << "#plink-lite v1\n#samples";
  for (const auto& s : ds.samples) {
    os << '\t' << s;
  }
  os << '\n';
  for (std::size_t l = 0; l < ds.loci.size(); ++l) {
    const LocusInfo& info = ds.loci[l];
    os << info.chrom << '\t' << info.id << '\t' << info.pos << '\t'
       << info.ref << '\t' << info.alt;
    for (std::size_t s = 0; s < ds.samples.size(); ++s) {
      os << '\t' << static_cast<int>(ds.genotypes.at(l, s));
    }
    os << '\n';
  }
  if (!os) {
    throw std::runtime_error("plink-lite: write failed");
  }
}

namespace {

PlinkLiteDataset load_plink_lite_impl(std::istream& is) {
  std::string line;
  if (!std::getline(is, line) || line != "#plink-lite v1") {
    throw std::runtime_error("plink-lite: missing or bad version header");
  }
  if (!std::getline(is, line) || line.rfind("#samples", 0) != 0) {
    throw std::runtime_error("plink-lite: missing #samples header");
  }
  PlinkLiteDataset ds;
  {
    std::istringstream hs(line);
    std::string tok;
    hs >> tok;  // "#samples"
    while (hs >> tok) {
      ds.samples.push_back(tok);
    }
  }
  if (ds.samples.empty()) {
    throw std::runtime_error("plink-lite: no samples declared");
  }

  std::vector<std::vector<std::uint8_t>> rows;
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == '#') {
      continue;
    }
    std::istringstream ls(line);
    LocusInfo info;
    if (!(ls >> info.chrom >> info.id >> info.pos >> info.ref >>
          info.alt)) {
      throw std::runtime_error("plink-lite: malformed locus line: " + line);
    }
    std::vector<std::uint8_t> dosages;
    dosages.reserve(ds.samples.size());
    std::size_t locus_missing = 0;
    std::string g;
    while (ls >> g) {
      if (g == ".") {
        ++ds.missing_calls;
        ++locus_missing;
        dosages.push_back(0);
      } else if (g == "0" || g == "1" || g == "2") {
        dosages.push_back(static_cast<std::uint8_t>(g[0] - '0'));
      } else {
        throw std::runtime_error("plink-lite: bad dosage '" + g + "'");
      }
    }
    if (dosages.size() != ds.samples.size()) {
      throw std::runtime_error(
          "plink-lite: locus " + info.id + " has " +
          std::to_string(dosages.size()) + " calls for " +
          std::to_string(ds.samples.size()) + " samples");
    }
    ds.loci.push_back(std::move(info));
    ds.missing_per_locus.push_back(locus_missing);
    rows.push_back(std::move(dosages));
  }

  ds.genotypes = bits::GenotypeMatrix(rows.size(), ds.samples.size());
  for (std::size_t l = 0; l < rows.size(); ++l) {
    for (std::size_t s = 0; s < ds.samples.size(); ++s) {
      ds.genotypes.at(l, s) = rows[l][s];
    }
  }
  return ds;
}

}  // namespace

PlinkLiteDataset with_synthetic_metadata(bits::GenotypeMatrix genotypes,
                                         const std::string& chrom,
                                         std::uint64_t start_pos,
                                         std::uint64_t spacing) {
  PlinkLiteDataset ds;
  ds.loci.reserve(genotypes.loci());
  for (std::size_t l = 0; l < genotypes.loci(); ++l) {
    LocusInfo info;
    info.chrom = chrom;
    info.id = "rs" + std::to_string(100000 + l);
    info.pos = start_pos + l * spacing;
    info.ref = 'A';
    info.alt = 'G';
    ds.loci.push_back(std::move(info));
  }
  ds.samples.reserve(genotypes.samples());
  for (std::size_t s = 0; s < genotypes.samples(); ++s) {
    ds.samples.push_back("sample" + std::to_string(s));
  }
  ds.genotypes = std::move(genotypes);
  return ds;
}

void save_plink_lite(const PlinkLiteDataset& ds,
                     const std::filesystem::path& path) {
  auto os = open_out(path);
  save_plink_lite(ds, os);
}

rt::Status try_load_plink_lite(std::istream& is, PlinkLiteDataset& out) {
  return checked_load(is, [&] { out = load_plink_lite_impl(is); });
}

PlinkLiteDataset load_plink_lite(std::istream& is) {
  PlinkLiteDataset ds;
  if (rt::Status st = try_load_plink_lite(is, ds); !st.ok()) {
    throw rt::Error(std::move(st));
  }
  return ds;
}

PlinkLiteDataset load_plink_lite(const std::filesystem::path& path) {
  auto is = open_in(path);
  return load_plink_lite(is);
}

}  // namespace snp::io
