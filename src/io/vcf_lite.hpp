// VCF-lite: a minimal reader/writer for the VCF subset genotype pipelines
// actually exchange — the fixed eight columns plus GT-only FORMAT fields
// with diploid calls (0/0, 0/1, 1/1, ./., phased '|' accepted). Multi-
// allelic records and non-GT FORMAT keys are rejected loudly rather than
// silently misread. Loads into the same PlinkLiteDataset the rest of the
// framework consumes.
#pragma once

#include <filesystem>
#include <iosfwd>

#include "io/plink_lite.hpp"
#include "rt/status.hpp"

namespace snp::io {

void save_vcf_lite(const PlinkLiteDataset& ds, std::ostream& os);
void save_vcf_lite(const PlinkLiteDataset& ds,
                   const std::filesystem::path& path);
[[nodiscard]] PlinkLiteDataset load_vcf_lite(std::istream& is);
[[nodiscard]] PlinkLiteDataset load_vcf_lite(
    const std::filesystem::path& path);
/// Status-returning variant (kIoCorrupt + byte offset on failure).
[[nodiscard]] rt::Status try_load_vcf_lite(std::istream& is,
                                           PlinkLiteDataset& out);

}  // namespace snp::io
