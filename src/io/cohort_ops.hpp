// Cohort manipulation: merging and subsetting datasets.
//
// The bookkeeping every real pipeline needs between the file formats and
// the kernels — combining genotyping batches (same loci, new samples),
// stacking marker panels (same samples, new loci), and pulling out sample
// or locus subsets — with the metadata (locus info, sample names,
// per-locus missing counts) kept consistent throughout.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "io/plink_lite.hpp"

namespace snp::io {

/// Concatenates loci (marker panels) of two datasets covering the *same
/// samples* (names must match in order). Throws on sample mismatch or
/// duplicate locus ids.
[[nodiscard]] PlinkLiteDataset merge_loci(const PlinkLiteDataset& a,
                                          const PlinkLiteDataset& b);

/// Concatenates samples (genotyping batches) of two datasets covering the
/// *same loci* (ids and positions must match in order). Throws on locus
/// mismatch or duplicate sample names.
[[nodiscard]] PlinkLiteDataset merge_samples(const PlinkLiteDataset& a,
                                             const PlinkLiteDataset& b);

/// Keeps the named samples, in the given order. Unknown names throw.
[[nodiscard]] PlinkLiteDataset subset_samples(
    const PlinkLiteDataset& ds, const std::vector<std::string>& names);

/// Keeps the loci at `indices`, in the given order. Out-of-range throws.
[[nodiscard]] PlinkLiteDataset subset_loci(
    const PlinkLiteDataset& ds, const std::vector<std::size_t>& indices);

}  // namespace snp::io
