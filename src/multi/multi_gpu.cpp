#include "multi/multi_gpu.hpp"

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <future>
#include <numeric>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "cpu/engine.hpp"
#include "exec/thread_pool.hpp"
#include "model/peak.hpp"
#include "obs/obs.hpp"
#include "rt/fault.hpp"

namespace snp::multi {

using bits::BitMatrix;
using bits::Comparison;
using bits::CountMatrix;

MultiGpuContext::MultiGpuContext(const std::string& device_name, int count,
                                 InterconnectSpec link)
    : link_(link) {
  if (count <= 0) {
    throw std::invalid_argument("MultiGpuContext: count must be positive");
  }
  contexts_.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    contexts_.push_back(Context::gpu(device_name));
  }
  init_weights();
}

MultiGpuContext::MultiGpuContext(
    const std::vector<std::string>& device_names, InterconnectSpec link)
    : link_(link) {
  if (device_names.empty()) {
    throw std::invalid_argument(
        "MultiGpuContext: need at least one device");
  }
  contexts_.reserve(device_names.size());
  for (const auto& name : device_names) {
    contexts_.push_back(Context::gpu(name));
  }
  init_weights();
}

void MultiGpuContext::init_weights() {
  weights_.resize(contexts_.size());
  double total = 0.0;
  for (std::size_t d = 0; d < contexts_.size(); ++d) {
    weights_[d] = model::peak_wordops_per_s(contexts_[d].gpu_spec(),
                                            bits::Comparison::kAnd);
    total += weights_[d];
  }
  for (auto& w : weights_) {
    w /= total;
  }
}

const model::GpuSpec& MultiGpuContext::device_spec() const {
  return contexts_.front().gpu_spec();
}

double MultiGpuContext::gather_seconds(std::size_t result_bytes) const {
  if (contexts_.size() < 2) {
    return 0.0;
  }
  // Ring all-gather onto device 0: (N-1)/N of the result crosses the
  // interconnect once; per-hop latency for each of the N-1 steps.
  const double frac = static_cast<double>(contexts_.size() - 1) /
                      static_cast<double>(contexts_.size());
  return static_cast<double>(result_bytes) * frac / (link_.gbps * 1e9) +
         static_cast<double>(contexts_.size() - 1) * link_.latency_us *
             1e-6;
}

namespace {

struct Shard {
  std::size_t begin = 0;
  std::size_t end = 0;
  std::size_t device = 0;
};

/// Splits rows proportionally to the devices' throughput weights
/// (uniform weights reduce to even sharding).
std::vector<Shard> make_shards(std::size_t rows,
                               const std::vector<double>& weights) {
  std::vector<Shard> shards;
  std::size_t at = 0;
  double cumulative = 0.0;
  for (std::size_t d = 0; d < weights.size() && at < rows; ++d) {
    cumulative += weights[d];
    const auto target = d + 1 == weights.size()
                            ? rows
                            : static_cast<std::size_t>(
                                  cumulative * static_cast<double>(rows) +
                                  0.5);
    const std::size_t end = std::min(std::max(target, at), rows);
    if (end > at) {
      shards.push_back({at, end, d});
      at = end;
    }
  }
  if (at < rows && !shards.empty()) {
    shards.back().end = rows;  // numerical-edge remainder
  }
  return shards;
}

/// Runs `task(d)` for every shard index through the exec thread pool —
/// shards land on distinct devices, so they are independent — and
/// propagates the first failure. With threads == 0 the pool runs each
/// task inline at submit time, i.e. the exact serial loop.
template <typename Fn>
void for_each_shard(std::size_t count, std::size_t threads, Fn&& task) {
  exec::ThreadPool pool(std::min(threads, count));
  std::vector<std::future<void>> done;
  done.reserve(count);
  for (std::size_t d = 0; d < count; ++d) {
    done.push_back(pool.submit([&task, d] { task(d); }));
  }
  for (auto& f : done) {
    f.get();
  }
}

/// Host-engine fallback for one shard's row range — the final rung of the
/// recovery ladder when the shard's device (and, under failover, every
/// other device) is gone. Counts are bit-identical to the device path by
/// the cross-engine conformance suite.
CompareResult host_compare_shard(const BitMatrix& a, const BitMatrix& b,
                                 Comparison op, bool shard_b,
                                 const Shard& s,
                                 const ComputeOptions& opts) {
  const auto t0 = std::chrono::steady_clock::now();
  CompareResult r;
  if (opts.functional) {
    const BitMatrix part = shard_b ? b.row_slice(s.begin, s.end)
                                   : a.row_slice(s.begin, s.end);
    const BitMatrix& ca = shard_b ? a : part;
    const BitMatrix& cb = shard_b ? part : b;
    if (opts.threads > 0) {
      exec::ThreadPool pool(opts.threads);
      r.counts = cpu::compare_blocked_async(ca, cb, op, pool);
    } else {
      r.counts = cpu::compare_blocked(ca, cb, op);
    }
    if (opts.chunk_callback) {
      // Same shard-relative offsets as the device pipeline's chunks.
      opts.chunk_callback(
          ComputeOptions::ChunkView{0, shard_b, r.counts});
    }
  }
  r.timing.device = "cpu (shard fallback)";
  r.timing.degraded = true;
  r.timing.chunks = 1;
  r.timing.end_to_end_s = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - t0)
                              .count();
  r.timing.kernel_s = r.timing.end_to_end_s;
  return r;
}

}  // namespace

MultiCompareResult MultiGpuContext::compare(const BitMatrix& a,
                                            const BitMatrix& b,
                                            Comparison op,
                                            const MultiGpuOptions& options) {
  if (a.bit_cols() != b.bit_cols()) {
    throw std::invalid_argument(
        "MultiGpuContext::compare: operands must share the K dimension");
  }
  const bool shard_b = b.rows() >= a.rows();
  const std::size_t shard_rows = shard_b ? b.rows() : a.rows();
  const auto shards = make_shards(shard_rows, weights_);

  MultiCompareResult result;
  result.timing.devices = static_cast<int>(shards.size());
  if (options.per_device.functional) {
    result.counts = CountMatrix(a.rows(), b.rows());
  }

  const rt::FailPolicy policy = options.per_device.recovery.policy;
  // Under failover a shard's in-pipeline failure must surface *here* —
  // the single-device rung would otherwise absorb it by degrading that
  // shard to the host locally. The shard still gets the full retry rung
  // first; only retry exhaustion escalates to shard failover.
  ComputeOptions shard_opts = options.per_device;
  if (policy == rt::FailPolicy::kFailover) {
    shard_opts.recovery.policy = rt::FailPolicy::kRetry;
  }

  // Run each shard's single-GPU pipeline as an executor task (each shard
  // owns a distinct device/context), then merge on the calling thread in
  // row order — the merge order, counts, and timing are therefore
  // identical for every host_threads value.
  SNP_OBS_SPAN("multi.compare");
  SNP_OBS_COUNT("multi.shards", shards.size());

  struct Done {
    Shard shard;
    CompareResult res;
  };
  std::vector<Done> completed;
  completed.reserve(shards.size());
  rt::FaultLog fault_log;
  std::vector<bool> device_lost(contexts_.size(), false);

  // Failover runs in rounds: every round with a failure permanently loses
  // at least one device (work is only ever assigned to live devices), so
  // the loop ends after at most device_count() rounds — the last one on
  // the host rung if nothing survives.
  std::vector<Shard> work(shards.begin(), shards.end());
  while (!work.empty()) {
    const std::vector<Shard> batch = std::move(work);
    work.clear();
    std::vector<CompareResult> res(batch.size());
    std::vector<std::optional<rt::Status>> errs(batch.size());
    for_each_shard(batch.size(), options.host_threads, [&](std::size_t d) {
      SNP_OBS_SPAN("multi.shard");
      const Shard s = batch[d];
      try {
        // Whole-device loss (node crash, hung driver) is modeled at the
        // shard site, keyed by device index for `shard:at=K` plans.
        rt::maybe_inject(rt::FaultSite::kShard,
                         static_cast<std::int64_t>(s.device));
        Context& ctx = contexts_[s.device];
        const BitMatrix part = shard_b ? b.row_slice(s.begin, s.end)
                                       : a.row_slice(s.begin, s.end);
        res[d] = shard_b ? ctx.compare(a, part, op, shard_opts)
                         : ctx.compare(part, b, op, shard_opts);
      } catch (const rt::Error& e) {
        if (policy == rt::FailPolicy::kFailover ||
            policy == rt::FailPolicy::kDegrade) {
          errs[d] = e.status();  // handled below, on the calling thread
          return;
        }
        throw;  // abort/retry: propagate the structured code intact
      }
    });

    std::vector<Shard> failed;
    for (std::size_t d = 0; d < batch.size(); ++d) {
      if (errs[d].has_value()) {
        failed.push_back(batch[d]);
        rt::FaultEvent ev;
        ev.site = "multi.shard";
        ev.code = errs[d]->code;
        ev.action = policy == rt::FailPolicy::kFailover ? "failover"
                                                        : "degrade";
        ev.chunk = static_cast<std::int64_t>(batch[d].device);
        ev.detail = errs[d]->to_string();
        fault_log.record(std::move(ev));
      } else {
        completed.push_back({batch[d], std::move(res[d])});
      }
    }
    if (failed.empty()) {
      continue;
    }

    if (policy == rt::FailPolicy::kDegrade) {
      // Each failed shard falls straight to the host rung.
      SNP_OBS_COUNT("rt.degrades", failed.size());
      for (const Shard& s : failed) {
        completed.push_back(
            {s, host_compare_shard(a, b, op, shard_b, s,
                                   options.per_device)});
      }
      result.timing.degraded = true;
      continue;
    }

    // kFailover: mark the shard's device lost and re-shard its rows
    // across the survivors by their throughput weights.
    for (const Shard& s : failed) {
      if (!device_lost[s.device]) {
        device_lost[s.device] = true;
        SNP_OBS_COUNT("rt.failovers", 1);
        result.timing.lost_devices.push_back(
            contexts_[s.device].device_name() + "[" +
            std::to_string(s.device) + "]");
      }
    }
    std::vector<std::size_t> survivors;
    std::vector<double> surv_weights;
    for (std::size_t d = 0; d < contexts_.size(); ++d) {
      if (!device_lost[d]) {
        survivors.push_back(d);
        surv_weights.push_back(weights_[d]);
      }
    }
    if (survivors.empty()) {
      // Whole box gone: final degradation rung.
      SNP_OBS_COUNT("rt.degrades", failed.size());
      for (const Shard& s : failed) {
        completed.push_back(
            {s, host_compare_shard(a, b, op, shard_b, s,
                                   options.per_device)});
      }
      result.timing.degraded = true;
      continue;
    }
    const double total = std::accumulate(surv_weights.begin(),
                                         surv_weights.end(), 0.0);
    for (auto& w : surv_weights) {
      w /= total;
    }
    for (const Shard& s : failed) {
      for (const Shard& sub :
           make_shards(s.end - s.begin, surv_weights)) {
        work.push_back({s.begin + sub.begin, s.begin + sub.end,
                        survivors[sub.device]});
      }
    }
  }

  // Merge in row order so counts, timing vectors, and the report are
  // deterministic regardless of which round produced each piece.
  std::sort(completed.begin(), completed.end(),
            [](const Done& x, const Done& y) {
              return x.shard.begin < y.shard.begin;
            });
  double worst = 0.0;
  for (const Done& done : completed) {
    const Shard& s = done.shard;
    const CompareResult& r = done.res;
    SNP_OBS_OBSERVE("multi.shard.end_to_end_seconds",
                    r.timing.end_to_end_s);
    result.timing.per_device_end_to_end_s.push_back(
        r.timing.end_to_end_s);
    result.timing.degraded =
        result.timing.degraded || r.timing.degraded;
    for (const rt::FaultEvent& ev : r.timing.fault_events) {
      result.timing.fault_events.push_back(ev);
    }
    if (r.timing.end_to_end_s > worst) {
      worst = r.timing.end_to_end_s;
      result.timing.slowest_device = r.timing;
    }
    if (options.per_device.functional) {
      for (std::size_t i = 0; i < r.counts.rows(); ++i) {
        for (std::size_t j = 0; j < r.counts.cols(); ++j) {
          if (shard_b) {
            result.counts.at(i, s.begin + j) = r.counts.at(i, j);
          } else {
            result.counts.at(s.begin + i, j) = r.counts.at(i, j);
          }
        }
      }
    }
  }
  for (rt::FaultEvent& ev : fault_log.snapshot()) {
    result.timing.fault_events.push_back(std::move(ev));
  }
  result.timing.gather_s =
      options.gather_on_device
          ? gather_seconds(a.rows() * b.rows() * sizeof(std::uint32_t))
          : 0.0;
  result.timing.end_to_end_s = worst + result.timing.gather_s;
  return result;
}

MultiGpuReport MultiGpuContext::estimate(std::size_t m, std::size_t n,
                                         std::size_t k_bits, Comparison op,
                                         const MultiGpuOptions& options)
    const {
  const bool shard_b = n >= m;
  const std::size_t shard_rows = shard_b ? n : m;
  const auto shards = make_shards(shard_rows, weights_);

  SNP_OBS_SPAN("multi.estimate");
  MultiGpuReport rep;
  rep.devices = static_cast<int>(shards.size());
  std::vector<TimingReport> shard_reports(shards.size());
  for_each_shard(
      shards.size(), options.host_threads, [&](std::size_t d) {
        const std::size_t len = shards[d].end - shards[d].begin;
        const Context& ctx = contexts_[shards[d].device];
        shard_reports[d] =
            shard_b
                ? ctx.estimate(m, len, k_bits, op, options.per_device)
                : ctx.estimate(len, n, k_bits, op, options.per_device);
      });
  double worst = 0.0;
  for (std::size_t d = 0; d < shards.size(); ++d) {
    const TimingReport& t = shard_reports[d];
    rep.per_device_end_to_end_s.push_back(t.end_to_end_s);
    if (t.end_to_end_s > worst) {
      worst = t.end_to_end_s;
      rep.slowest_device = t;
    }
  }
  rep.gather_s = options.gather_on_device
                     ? gather_seconds(m * n * sizeof(std::uint32_t))
                     : 0.0;
  rep.end_to_end_s = worst + rep.gather_s;
  return rep;
}

}  // namespace snp::multi
