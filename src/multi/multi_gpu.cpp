#include "multi/multi_gpu.hpp"

#include <algorithm>
#include <cstddef>
#include <future>
#include <stdexcept>
#include <vector>

#include "exec/thread_pool.hpp"
#include "model/peak.hpp"
#include "obs/obs.hpp"

namespace snp::multi {

using bits::BitMatrix;
using bits::Comparison;
using bits::CountMatrix;

MultiGpuContext::MultiGpuContext(const std::string& device_name, int count,
                                 InterconnectSpec link)
    : link_(link) {
  if (count <= 0) {
    throw std::invalid_argument("MultiGpuContext: count must be positive");
  }
  contexts_.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    contexts_.push_back(Context::gpu(device_name));
  }
  init_weights();
}

MultiGpuContext::MultiGpuContext(
    const std::vector<std::string>& device_names, InterconnectSpec link)
    : link_(link) {
  if (device_names.empty()) {
    throw std::invalid_argument(
        "MultiGpuContext: need at least one device");
  }
  contexts_.reserve(device_names.size());
  for (const auto& name : device_names) {
    contexts_.push_back(Context::gpu(name));
  }
  init_weights();
}

void MultiGpuContext::init_weights() {
  weights_.resize(contexts_.size());
  double total = 0.0;
  for (std::size_t d = 0; d < contexts_.size(); ++d) {
    weights_[d] = model::peak_wordops_per_s(contexts_[d].gpu_spec(),
                                            bits::Comparison::kAnd);
    total += weights_[d];
  }
  for (auto& w : weights_) {
    w /= total;
  }
}

const model::GpuSpec& MultiGpuContext::device_spec() const {
  return contexts_.front().gpu_spec();
}

double MultiGpuContext::gather_seconds(std::size_t result_bytes) const {
  if (contexts_.size() < 2) {
    return 0.0;
  }
  // Ring all-gather onto device 0: (N-1)/N of the result crosses the
  // interconnect once; per-hop latency for each of the N-1 steps.
  const double frac = static_cast<double>(contexts_.size() - 1) /
                      static_cast<double>(contexts_.size());
  return static_cast<double>(result_bytes) * frac / (link_.gbps * 1e9) +
         static_cast<double>(contexts_.size() - 1) * link_.latency_us *
             1e-6;
}

namespace {

struct Shard {
  std::size_t begin = 0;
  std::size_t end = 0;
  std::size_t device = 0;
};

/// Splits rows proportionally to the devices' throughput weights
/// (uniform weights reduce to even sharding).
std::vector<Shard> make_shards(std::size_t rows,
                               const std::vector<double>& weights) {
  std::vector<Shard> shards;
  std::size_t at = 0;
  double cumulative = 0.0;
  for (std::size_t d = 0; d < weights.size() && at < rows; ++d) {
    cumulative += weights[d];
    const auto target = d + 1 == weights.size()
                            ? rows
                            : static_cast<std::size_t>(
                                  cumulative * static_cast<double>(rows) +
                                  0.5);
    const std::size_t end = std::min(std::max(target, at), rows);
    if (end > at) {
      shards.push_back({at, end, d});
      at = end;
    }
  }
  if (at < rows && !shards.empty()) {
    shards.back().end = rows;  // numerical-edge remainder
  }
  return shards;
}

/// Runs `task(d)` for every shard index through the exec thread pool —
/// shards land on distinct devices, so they are independent — and
/// propagates the first failure. With threads == 0 the pool runs each
/// task inline at submit time, i.e. the exact serial loop.
template <typename Fn>
void for_each_shard(std::size_t count, std::size_t threads, Fn&& task) {
  exec::ThreadPool pool(std::min(threads, count));
  std::vector<std::future<void>> done;
  done.reserve(count);
  for (std::size_t d = 0; d < count; ++d) {
    done.push_back(pool.submit([&task, d] { task(d); }));
  }
  for (auto& f : done) {
    f.get();
  }
}

}  // namespace

MultiCompareResult MultiGpuContext::compare(const BitMatrix& a,
                                            const BitMatrix& b,
                                            Comparison op,
                                            const MultiGpuOptions& options) {
  if (a.bit_cols() != b.bit_cols()) {
    throw std::invalid_argument(
        "MultiGpuContext::compare: operands must share the K dimension");
  }
  const bool shard_b = b.rows() >= a.rows();
  const std::size_t shard_rows = shard_b ? b.rows() : a.rows();
  const auto shards = make_shards(shard_rows, weights_);

  MultiCompareResult result;
  result.timing.devices = static_cast<int>(shards.size());
  if (options.per_device.functional) {
    result.counts = CountMatrix(a.rows(), b.rows());
  }

  // Run each shard's single-GPU pipeline as an executor task (each shard
  // owns a distinct device/context), then merge on the calling thread in
  // shard order — the merge order, counts, and timing are therefore
  // identical for every host_threads value.
  SNP_OBS_SPAN("multi.compare");
  SNP_OBS_COUNT("multi.shards", shards.size());
  std::vector<CompareResult> shard_results(shards.size());
  for_each_shard(shards.size(), options.host_threads,
                 [&](std::size_t d) {
                   SNP_OBS_SPAN("multi.shard");
                   const Shard s = shards[d];
                   Context& ctx = contexts_[s.device];
                   const BitMatrix part =
                       shard_b ? b.row_slice(s.begin, s.end)
                               : a.row_slice(s.begin, s.end);
                   shard_results[d] =
                       shard_b
                           ? ctx.compare(a, part, op, options.per_device)
                           : ctx.compare(part, b, op, options.per_device);
                 });

  double worst = 0.0;
  for (std::size_t d = 0; d < shards.size(); ++d) {
    const Shard s = shards[d];
    const CompareResult& r = shard_results[d];
    SNP_OBS_OBSERVE("multi.shard.end_to_end_seconds",
                    r.timing.end_to_end_s);
    result.timing.per_device_end_to_end_s.push_back(
        r.timing.end_to_end_s);
    if (r.timing.end_to_end_s > worst) {
      worst = r.timing.end_to_end_s;
      result.timing.slowest_device = r.timing;
    }
    if (options.per_device.functional) {
      for (std::size_t i = 0; i < r.counts.rows(); ++i) {
        for (std::size_t j = 0; j < r.counts.cols(); ++j) {
          if (shard_b) {
            result.counts.at(i, s.begin + j) = r.counts.at(i, j);
          } else {
            result.counts.at(s.begin + i, j) = r.counts.at(i, j);
          }
        }
      }
    }
  }
  result.timing.gather_s =
      options.gather_on_device
          ? gather_seconds(a.rows() * b.rows() * sizeof(std::uint32_t))
          : 0.0;
  result.timing.end_to_end_s = worst + result.timing.gather_s;
  return result;
}

MultiGpuReport MultiGpuContext::estimate(std::size_t m, std::size_t n,
                                         std::size_t k_bits, Comparison op,
                                         const MultiGpuOptions& options)
    const {
  const bool shard_b = n >= m;
  const std::size_t shard_rows = shard_b ? n : m;
  const auto shards = make_shards(shard_rows, weights_);

  SNP_OBS_SPAN("multi.estimate");
  MultiGpuReport rep;
  rep.devices = static_cast<int>(shards.size());
  std::vector<TimingReport> shard_reports(shards.size());
  for_each_shard(
      shards.size(), options.host_threads, [&](std::size_t d) {
        const std::size_t len = shards[d].end - shards[d].begin;
        const Context& ctx = contexts_[shards[d].device];
        shard_reports[d] =
            shard_b
                ? ctx.estimate(m, len, k_bits, op, options.per_device)
                : ctx.estimate(len, n, k_bits, op, options.per_device);
      });
  double worst = 0.0;
  for (std::size_t d = 0; d < shards.size(); ++d) {
    const TimingReport& t = shard_reports[d];
    rep.per_device_end_to_end_s.push_back(t.end_to_end_s);
    if (t.end_to_end_s > worst) {
      worst = t.end_to_end_s;
      rep.slowest_device = t;
    }
  }
  rep.gather_s = options.gather_on_device
                     ? gather_seconds(m * n * sizeof(std::uint32_t))
                     : 0.0;
  rep.end_to_end_s = worst + rep.gather_s;
  return rep;
}

}  // namespace snp::multi
