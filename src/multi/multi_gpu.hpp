// Multi-GPU execution (paper Section VII, future work).
//
// "We believe that our framework can be extended to handle even larger
// problem sizes is to exploit multi-GPU systems such as the DGX-2...
// However, this comes at the cost of having to communicate between
// multi-GPUs, which would require an approach that is similar to
// distributed-memory computing."
//
// This module shards the streamed operand of a comparison across N
// simulated devices (each with its own context, queue, and PCIe link, as
// in a DGX-style box), runs the single-GPU pipeline per shard
// concurrently, and merges results on the host. The SNP comparisons are
// embarrassingly parallel across output columns/rows, so the only
// communication is the optional device-side all-gather of the result
// (modeled over an NVLink-like interconnect) for pipelines that consume
// gamma on-device.
#pragma once

#include <string>
#include <vector>

#include "core/snpcmp.hpp"

namespace snp::multi {

/// NVLink-class device-to-device interconnect model.
struct InterconnectSpec {
  double gbps = 25.0;
  double latency_us = 10.0;
};

struct MultiGpuOptions {
  ComputeOptions per_device;
  /// Model an all-gather of the gamma matrix onto device 0 after the
  /// compute (for on-device downstream processing); off by default, in
  /// which case results are simply host-merged (free: each shard already
  /// read back its slice).
  bool gather_on_device = false;
  /// Host threads driving the per-shard pipelines through the exec
  /// thread pool — one task per shard, so more than device_count()
  /// threads is never useful. 0 runs the tasks inline (serial). Results
  /// are merged in shard order after all shards complete, so counts and
  /// timing are identical for every value. A per_device.chunk_callback
  /// fires concurrently from different shards when host_threads > 1 and
  /// must be thread-safe.
  std::size_t host_threads = 0;
};

struct MultiGpuReport {
  TimingReport slowest_device;  ///< critical-path shard
  double end_to_end_s = 0.0;    ///< max over shards (+ gather if enabled)
  double gather_s = 0.0;
  int devices = 0;
  std::vector<double> per_device_end_to_end_s;
  /// Devices that died mid-run and had their shards failed over
  /// ("titanv[2]" = third device of the box). Empty on clean runs.
  std::vector<std::string> lost_devices;
  /// Every fault observed across all shards (shard-level incidents plus
  /// each shard pipeline's own TimingReport::fault_events).
  std::vector<rt::FaultEvent> fault_events;
  /// True when any rows were recomputed on the CPU rung (either a shard
  /// pipeline degraded internally or no device survived for failover).
  bool degraded = false;
};

struct MultiCompareResult {
  bits::CountMatrix counts;  ///< empty when per_device.functional == false
  MultiGpuReport timing;
};

class MultiGpuContext {
 public:
  /// `count` identical devices of the named kind (a DGX-2-like box).
  MultiGpuContext(const std::string& device_name, int count,
                  InterconnectSpec link = {});

  /// Heterogeneous box: one device per name. Shards are sized
  /// proportionally to each device's peak comparison throughput, so a
  /// Titan V next to a GTX 980 gets ~2.7x the rows and the devices finish
  /// together (classic static load balancing for distributed memory).
  explicit MultiGpuContext(const std::vector<std::string>& device_names,
                           InterconnectSpec link = {});

  [[nodiscard]] int device_count() const {
    return static_cast<int>(contexts_.size());
  }
  [[nodiscard]] const model::GpuSpec& device_spec() const;

  /// Shards the larger operand row-wise across the devices; each shard
  /// runs the standard single-GPU pipeline (init happens concurrently on
  /// every device). Results are bit-identical to the single-device path.
  ///
  /// Fault tolerance follows per_device.recovery.policy
  /// (docs/robustness.md): under kFailover a shard whose device keeps
  /// failing is marked lost (MultiGpuReport::lost_devices) and its rows
  /// are re-sharded across the surviving devices by their throughput
  /// weights — with none left, the rows fall to the host engine. Under
  /// kDegrade each failed shard falls to the host directly. Merged counts
  /// are bit-identical to a clean run in every case; kAbort/kRetry
  /// propagate the structured rt::Error instead.
  [[nodiscard]] MultiCompareResult compare(const bits::BitMatrix& a,
                                           const bits::BitMatrix& b,
                                           bits::Comparison op,
                                           const MultiGpuOptions& options =
                                               {});

  /// Data-free projection of the same sharding (paper-scale sweeps).
  [[nodiscard]] MultiGpuReport estimate(std::size_t m, std::size_t n,
                                        std::size_t k_bits,
                                        bits::Comparison op,
                                        const MultiGpuOptions& options =
                                            {}) const;

  /// The sharding weights in use (normalized to sum 1).
  [[nodiscard]] const std::vector<double>& weights() const {
    return weights_;
  }

 private:
  [[nodiscard]] double gather_seconds(std::size_t result_bytes) const;
  void init_weights();

  std::vector<Context> contexts_;
  std::vector<double> weights_;
  InterconnectSpec link_;
};

}  // namespace snp::multi
