#include "obs/metrics.hpp"

#include "obs/envinfo.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <limits>
#include <ostream>
#include <stdexcept>

namespace snp::obs {

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1) {
  if (bounds_.empty()) {
    throw std::invalid_argument("Histogram: need at least one bound");
  }
  for (std::size_t i = 1; i < bounds_.size(); ++i) {
    if (bounds_[i] <= bounds_[i - 1]) {
      throw std::invalid_argument(
          "Histogram: bounds must be strictly increasing");
    }
  }
}

void Histogram::observe(double v) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const auto idx = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + v,
                                     std::memory_order_relaxed)) {
  }
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> out(buckets_.size());
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

std::vector<double> Histogram::latency_bounds() {
  std::vector<double> bounds;
  for (double decade = 1e-6; decade < 10.0; decade *= 10.0) {
    bounds.push_back(decade);
    bounds.push_back(decade * 2.0);
    bounds.push_back(decade * 5.0);
  }
  bounds.push_back(10.0);
  return bounds;
}

std::vector<double> Histogram::service_latency_bounds() {
  static const double kSteps[] = {1.0, 1.5, 2.0, 2.5, 3.0, 4.0, 5.0, 7.5};
  std::vector<double> bounds;
  for (double decade = 1e-5; decade < 1.0; decade *= 10.0) {
    for (const double step : kSteps) {
      bounds.push_back(decade * step);
    }
  }
  bounds.push_back(1.0);
  bounds.push_back(1.5);
  bounds.push_back(2.5);
  return bounds;
}

double MetricsSnapshot::HistogramView::percentile_le(double q) const {
  if (count == 0) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  // Rank of the q-quantile observation under the exact ceil-rank
  // definition; walk the cumulative counts to its bucket.
  const auto rank = static_cast<std::uint64_t>(
      std::max(1.0, std::ceil(q * static_cast<double>(count))));
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < bounds.size(); ++i) {
    cumulative += counts[i];
    if (cumulative >= rank) {
      return bounds[i];
    }
  }
  return std::numeric_limits<double>::infinity();  // overflow bucket
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  const std::lock_guard lock(mu_);
  auto& slot = counters_[name];
  if (!slot) {
    slot = std::make_unique<Counter>();
  }
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  const std::lock_guard lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) {
    slot = std::make_unique<Gauge>();
  }
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> bounds) {
  const std::lock_guard lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) {
    slot = std::make_unique<Histogram>(std::move(bounds));
  }
  return *slot;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  const std::lock_guard lock(mu_);
  MetricsSnapshot snap;
  for (const auto& [name, c] : counters_) {
    snap.counters[name] = c->value();
  }
  for (const auto& [name, g] : gauges_) {
    snap.gauges[name] = g->value();
    snap.gauge_peaks[name] = g->peak();
  }
  for (const auto& [name, h] : histograms_) {
    MetricsSnapshot::HistogramView view;
    view.bounds = h->bounds();
    view.counts = h->bucket_counts();
    view.count = h->count();
    view.sum = h->sum();
    snap.histograms[name] = std::move(view);
  }
  return snap;
}

void MetricsRegistry::reset() {
  const std::lock_guard lock(mu_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

namespace {

/// JSON string escaping for metric names (names are ASCII identifiers by
/// convention, but the writer must never emit invalid JSON regardless).
void json_string(std::ostream& os, const std::string& s) {
  os << '"';
  for (const char ch : s) {
    switch (ch) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\t':
        os << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", ch);
          os << buf;
        } else {
          os << ch;
        }
    }
  }
  os << '"';
}

template <typename Map>
void json_number_map(std::ostream& os, const Map& map) {
  os << "{";
  bool first = true;
  for (const auto& [name, value] : map) {
    if (!first) {
      os << ", ";
    }
    first = false;
    json_string(os, name);
    os << ": " << value;
  }
  os << "}";
}

std::string prom_name(const std::string& name) {
  std::string out = "snpcmp_";
  for (const char ch : name) {
    out += std::isalnum(static_cast<unsigned char>(ch)) != 0 ? ch : '_';
  }
  return out;
}

/// Renders a double per the exposition format: non-finite values must be
/// spelled NaN / +Inf / -Inf (ostream's "nan"/"inf" are not valid
/// Prometheus sample values).
void prom_number(std::ostream& os, double v) {
  if (std::isnan(v)) {
    os << "NaN";
  } else if (std::isinf(v)) {
    os << (v > 0.0 ? "+Inf" : "-Inf");
  } else {
    os << v;
  }
}

/// `# HELP` text escaping: backslash and newline only (quotes are legal
/// in help text, unlike label values).
std::string prom_escape_help(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char ch : s) {
    if (ch == '\\') {
      out += "\\\\";
    } else if (ch == '\n') {
      out += "\\n";
    } else {
      out += ch;
    }
  }
  return out;
}

/// One family header: `# HELP` first, `# TYPE` second (the exposition
/// format requires HELP to precede TYPE when both are present).
void prom_family(std::ostream& os, const std::string& p,
                 const std::string& source_name, const char* type) {
  os << "# HELP " << p << " "
     << prom_escape_help("snpcmp registry metric " + source_name) << "\n"
     << "# TYPE " << p << " " << type << "\n";
}

}  // namespace

void write_metrics_json(const MetricsSnapshot& snap, std::ostream& os) {
  os << "{\n  \"env\": ";
  write_env_json(collect_env_info(), os);
  os << ",\n  \"counters\": ";
  json_number_map(os, snap.counters);
  os << ",\n  \"gauges\": ";
  json_number_map(os, snap.gauges);
  os << ",\n  \"gauge_peaks\": ";
  json_number_map(os, snap.gauge_peaks);
  os << ",\n  \"histograms\": {";
  bool first = true;
  for (const auto& [name, h] : snap.histograms) {
    if (!first) {
      os << ",";
    }
    first = false;
    os << "\n    ";
    json_string(os, name);
    os << ": {\"bounds\": [";
    for (std::size_t i = 0; i < h.bounds.size(); ++i) {
      os << (i != 0 ? ", " : "") << h.bounds[i];
    }
    os << "], \"counts\": [";
    for (std::size_t i = 0; i < h.counts.size(); ++i) {
      os << (i != 0 ? ", " : "") << h.counts[i];
    }
    os << "], \"count\": " << h.count << ", \"sum\": " << h.sum
       << ", \"percentiles\": {";
    const char* sep = "";
    for (const auto& [label, q] :
         {std::pair<const char*, double>{"p50_le", 0.50},
          {"p90_le", 0.90},
          {"p99_le", 0.99}}) {
      const double le = h.percentile_le(q);
      os << sep << "\"" << label << "\": ";
      if (std::isfinite(le)) {
        os << le;
      } else {
        os << "null";  // empty histogram or overflow bucket
      }
      sep = ", ";
    }
    os << ", \"approx\": true}}";
  }
  os << "\n  }\n}\n";
}

std::string prom_escape_label(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char ch : s) {
    if (ch == '\\') {
      out += "\\\\";
    } else if (ch == '"') {
      out += "\\\"";
    } else if (ch == '\n') {
      out += "\\n";
    } else {
      out += ch;
    }
  }
  return out;
}

void write_metrics_prometheus(const MetricsSnapshot& snap,
                              const EnvInfo& env, std::ostream& os) {
  // Provenance as labels on a constant-1 gauge — the standard
  // build_info join-key idiom; env strings are uncontrolled, so every
  // label value goes through prom_escape_label.
  os << "# HELP snpcmp_build_info execution environment of this process\n"
     << "# TYPE snpcmp_build_info gauge\n"
     << "snpcmp_build_info{compiler=\"" << prom_escape_label(env.compiler)
     << "\",git_sha=\"" << prom_escape_label(env.git_sha) << "\",host=\""
     << prom_escape_label(env.hostname) << "\",kernel=\""
     << prom_escape_label(env.kernel) << "\",cpu=\""
     << prom_escape_label(env.cpu_model) << "\"} 1\n";
  for (const auto& [name, value] : snap.counters) {
    const std::string p = prom_name(name);
    prom_family(os, p, name, "counter");
    os << p << " " << value << "\n";
  }
  for (const auto& [name, value] : snap.gauges) {
    const std::string p = prom_name(name);
    prom_family(os, p, name, "gauge");
    os << p << " " << value << "\n";
    const auto peak = snap.gauge_peaks.find(name);
    if (peak != snap.gauge_peaks.end()) {
      prom_family(os, p + "_peak", name + " high-water mark", "gauge");
      os << p << "_peak " << peak->second << "\n";
    }
  }
  for (const auto& [name, h] : snap.histograms) {
    const std::string p = prom_name(name);
    prom_family(os, p, name, "histogram");
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < h.bounds.size(); ++i) {
      cumulative += h.counts[i];
      os << p << "_bucket{le=\"";
      prom_number(os, h.bounds[i]);
      os << "\"} " << cumulative << "\n";
    }
    os << p << "_bucket{le=\"+Inf\"} " << h.count << "\n" << p << "_sum ";
    prom_number(os, h.sum);
    os << "\n" << p << "_count " << h.count << "\n";
  }
}

void write_metrics_prometheus(const MetricsSnapshot& snap,
                              std::ostream& os) {
  write_metrics_prometheus(snap, collect_env_info(), os);
}

}  // namespace snp::obs
