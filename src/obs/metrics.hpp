// snp::obs — process-wide metrics registry.
//
// The paper's methodology is measurement: microbenchmarked pipe latencies
// and throughputs feed an analytical model whose predictions are compared
// against achieved GOPS (Figs. 5-9). This module gives the runtime the
// same discipline — every subsystem publishes named counters, gauges, and
// fixed-bucket histograms into one registry, so a run can be accounted for
// in bytes, word-ops, and queue depths without ad-hoc printf timing.
//
// Hot-path contract: Counter/Gauge/Histogram updates are single relaxed
// atomic RMW operations — no locks, no allocation — so they are safe from
// worker threads of the exec pool and cheap enough for per-chunk (not
// per-word) call sites. Registration (name lookup) takes a mutex and is
// meant for cold paths; cache the returned reference:
//
//   static auto& packed = obs::MetricsRegistry::global()
//                             .counter("cpu.pack_a.words");
//   packed.add(panel_words);
//
// Handles returned by the registry live as long as the registry (node
// storage; the map never moves a metric). snapshot() copies a consistent
// point-in-time view for serialization (JSON / Prometheus text).
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace snp::obs {

struct EnvInfo;

/// Monotonic event/byte/op count.
class Counter {
 public:
  void add(std::uint64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  void increment() { add(1); }
  [[nodiscard]] std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Instantaneous signed level (queue depth, in-flight chunks, workers).
/// Tracks the high-water mark alongside the live value, since a snapshot
/// taken after a pipeline drains would otherwise always read 0.
class Gauge {
 public:
  void set(std::int64_t v) {
    value_.store(v, std::memory_order_relaxed);
    raise_peak(v);
  }
  void add(std::int64_t delta) {
    raise_peak(value_.fetch_add(delta, std::memory_order_relaxed) + delta);
  }
  void sub(std::int64_t delta) {
    value_.fetch_sub(delta, std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t peak() const {
    return peak_.load(std::memory_order_relaxed);
  }

 private:
  void raise_peak(std::int64_t v) {
    std::int64_t cur = peak_.load(std::memory_order_relaxed);
    while (v > cur &&
           !peak_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }

  std::atomic<std::int64_t> value_{0};
  std::atomic<std::int64_t> peak_{0};
};

/// Fixed-bucket histogram: bounds are set at registration and immutable,
/// so observe() is a bucket search plus three relaxed atomics. Bucket i
/// counts observations <= bounds[i]; one overflow bucket catches the rest
/// (Prometheus "le" semantics, with +Inf implicit).
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double v);
  [[nodiscard]] const std::vector<double>& bounds() const { return bounds_; }
  [[nodiscard]] std::vector<std::uint64_t> bucket_counts() const;
  [[nodiscard]] std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  /// Sum of observed values (atomic CAS accumulation).
  [[nodiscard]] double sum() const {
    return sum_.load(std::memory_order_relaxed);
  }

  /// Default latency bounds in seconds: 1 us .. 10 s, decade steps with
  /// 1-2-5 subdivision — wide enough for pack tasks and end-to-end runs.
  [[nodiscard]] static std::vector<double> latency_bounds();

  /// Tighter bounds for service request latencies (svc.request.latency):
  /// 10 us .. 2.5 s with 1-1.5-2-2.5-3-4-5-7.5 decade subdivision, so a
  /// bucket-resolution percentile is within ~50% of the true value in
  /// the millisecond range a serving SLO cares about.
  [[nodiscard]] static std::vector<double> service_latency_bounds();

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<std::uint64_t>> buckets_;  ///< bounds + overflow
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Point-in-time copy of every registered metric, safe to serialize while
/// the hot path keeps mutating the live registry.
struct MetricsSnapshot {
  struct HistogramView {
    std::vector<double> bounds;
    std::vector<std::uint64_t> counts;  ///< bounds.size() + 1 entries
    std::uint64_t count = 0;
    double sum = 0.0;
    /// Honest bucket-resolution quantile: the upper bound ("le") of the
    /// bucket holding the q-quantile observation — an upper bound, not
    /// an interpolation, so presentation must carry a '~' or
    /// "approx":true marker. Returns +inf when the quantile lands in
    /// the overflow bucket, NaN on an empty histogram.
    [[nodiscard]] double percentile_le(double q) const;
  };
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, std::int64_t> gauges;
  std::map<std::string, std::int64_t> gauge_peaks;
  std::map<std::string, HistogramView> histograms;
};

class MetricsRegistry {
 public:
  /// The process-wide registry every subsystem publishes into.
  [[nodiscard]] static MetricsRegistry& global();

  /// Finds or creates; the reference stays valid for the registry's
  /// lifetime. Name convention: "<subsystem>.<object>.<unit-ish>"
  /// (e.g. "exec.pool.tasks_run", "core.h2d.bytes").
  [[nodiscard]] Counter& counter(const std::string& name);
  [[nodiscard]] Gauge& gauge(const std::string& name);
  /// `bounds` must be strictly increasing; ignored (with the original
  /// bounds kept) when the histogram already exists.
  [[nodiscard]] Histogram& histogram(const std::string& name,
                                     std::vector<double> bounds);

  [[nodiscard]] MetricsSnapshot snapshot() const;

  /// Drops every metric. Tests only — outstanding references dangle.
  void reset();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// Serializes a snapshot as a single JSON object:
///   {"counters": {..}, "gauges": {..}, "gauge_peaks": {..},
///    "histograms": {name: {"bounds": [..], "counts": [..],
///                          "count": n, "sum": s,
///                          "percentiles": {"p50_le": x, "p90_le": y,
///                                          "p99_le": z, "approx": true}}}}
/// Percentile values are bucket upper bounds (see
/// HistogramView::percentile_le), hence the explicit "approx" flag.
void write_metrics_json(const MetricsSnapshot& snap, std::ostream& os);

/// Escapes a Prometheus label value per the text exposition format:
/// backslash, double quote, and newline become \\, \", and \n. Used for
/// the snpcmp_build_info labels (env strings are uncontrolled input).
[[nodiscard]] std::string prom_escape_label(std::string_view s);

/// Prometheus text exposition format (metric names sanitized to
/// [a-zA-Z0-9_] with a "snpcmp_" prefix; histograms as cumulative
/// _bucket{le=...} series plus _count and _sum). Conformance details
/// pinned by tests/test_obs.cpp:
///  * every family emits `# HELP` then `# TYPE` then its samples;
///  * non-finite values render as NaN / +Inf / -Inf (never inf/nan);
///  * a snpcmp_build_info gauge (value 1) carries the environment as
///    escaped labels — the standard join-key idiom for provenance.
/// The two-argument form collects the live environment; pass EnvInfo
/// explicitly for byte-stable output (golden tests).
void write_metrics_prometheus(const MetricsSnapshot& snap, std::ostream& os);
void write_metrics_prometheus(const MetricsSnapshot& snap,
                              const EnvInfo& env, std::ostream& os);

}  // namespace snp::obs
