#include "obs/envinfo.hpp"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <ostream>
#include <sstream>
#include <thread>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/utsname.h>
#include <unistd.h>
#endif

namespace snp::obs {

namespace {

std::string trim(std::string s) {
  const auto first = s.find_first_not_of(" \t\r\n");
  if (first == std::string::npos) {
    return {};
  }
  const auto last = s.find_last_not_of(" \t\r\n");
  return s.substr(first, last - first + 1);
}

std::string first_line_of(const std::string& path) {
  std::ifstream in(path);
  std::string line;
  if (!in || !std::getline(in, line)) {
    return {};
  }
  return trim(line);
}

std::string cpu_model_name() {
  std::ifstream in("/proc/cpuinfo");
  std::string line;
  while (in && std::getline(in, line)) {
    if (line.rfind("model name", 0) == 0) {
      const auto colon = line.find(':');
      if (colon != std::string::npos) {
        return trim(line.substr(colon + 1));
      }
    }
  }
  return {};
}

std::string compiler_id() {
#if defined(__clang__)
  return std::string("clang ") + __VERSION__;
#elif defined(__GNUC__)
  return std::string("gcc ") + __VERSION__;
#elif defined(_MSC_VER)
  return "msvc";
#else
  return "unknown";
#endif
}

std::string git_sha_of_cwd() {
  // NOLINTNEXTLINE(concurrency-mt-unsafe): read-only env access;
  // nothing in the process ever calls setenv.
  if (const char* env = std::getenv("SNPCMP_GIT_SHA");
      env != nullptr && *env != '\0') {
    return env;
  }
#if defined(__unix__) || defined(__APPLE__)
  FILE* pipe = ::popen("git rev-parse --short HEAD 2>/dev/null", "r");
  if (pipe == nullptr) {
    return {};
  }
  char buf[128] = {};
  std::string out;
  while (std::fgets(buf, sizeof buf, pipe) != nullptr) {
    out += buf;
  }
  ::pclose(pipe);
  return trim(out);
#else
  return {};
#endif
}

std::string or_unknown(std::string s) {
  return s.empty() ? std::string("unknown") : s;
}

}  // namespace

EnvInfo collect_env_info() {
  EnvInfo env;
  env.cpu_model = or_unknown(cpu_model_name());
  env.logical_cores =
      static_cast<int>(std::thread::hardware_concurrency());
  env.governor = or_unknown(first_line_of(
      "/sys/devices/system/cpu/cpu0/cpufreq/scaling_governor"));
  env.compiler = compiler_id();
  env.git_sha = or_unknown(git_sha_of_cwd());
#if defined(__unix__) || defined(__APPLE__)
  char host[256] = {};
  if (::gethostname(host, sizeof host - 1) == 0) {
    env.hostname = host;
  }
  utsname uts{};
  if (::uname(&uts) == 0) {
    env.kernel = std::string(uts.sysname) + " " + uts.release;
  }
#endif
  env.hostname = or_unknown(std::move(env.hostname));
  env.kernel = or_unknown(std::move(env.kernel));
  return env;
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char ch : s) {
    switch (ch) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(
                            static_cast<unsigned char>(ch)));
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  return out;
}

void write_env_json(const EnvInfo& env, std::ostream& os) {
  os << "{\"cpu_model\": \"" << json_escape(env.cpu_model)
     << "\", \"logical_cores\": " << env.logical_cores
     << ", \"governor\": \"" << json_escape(env.governor)
     << "\", \"compiler\": \"" << json_escape(env.compiler)
     << "\", \"git_sha\": \"" << json_escape(env.git_sha)
     << "\", \"hostname\": \"" << json_escape(env.hostname)
     << "\", \"kernel\": \"" << json_escape(env.kernel) << "\"}";
}

}  // namespace snp::obs
