// snp::obs — Linux hardware performance counters via perf_event_open.
//
// The roofline line in every instrumented run says how close we got to
// the model's ceiling; hardware counters say WHY. One HwCounters object
// owns a perf event group — cycles (leader), instructions, cache
// references/misses, branch misses — read atomically in a single grouped
// read so the derived rates (IPC, miss ratios) are internally consistent.
//
// Availability is a runtime property, not a build option: containers,
// locked-down kernels (perf_event_paranoid), and non-Linux hosts all
// land on the same graceful path — ok() is false, reads return invalid
// values, and to_line() says "perf counters unavailable" instead of
// lying with zeros. Results of the measured computation are never
// affected either way.
//
// Attachment points:
//  - CLI `--perf`: counts across the whole compute command, printed next
//    to the roofline line and published into the MetricsRegistry (the
//    obs.hw.* counters) so --metrics-out dumps include them.
//  - HwCounterSpan: RAII — a Span plus counters over the same scope,
//    published on destruction.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/span.hpp"

namespace snp::obs {

class MetricsRegistry;

/// One consistent grouped read. Absent counters (PMU slot exhausted, or
/// the specific event unsupported) read as 0 with the matching has_*
/// flag false; `valid` is false when the whole group is unavailable.
struct HwCounterValues {
  bool valid = false;
  double scale = 1.0;  ///< time_enabled/time_running multiplexing factor
  std::uint64_t cycles = 0;
  std::uint64_t instructions = 0;
  std::uint64_t cache_refs = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t branch_misses = 0;
  bool has_instructions = false;
  bool has_cache = false;
  bool has_branch = false;

  /// Instructions per cycle (0 when unavailable).
  [[nodiscard]] double ipc() const;
  /// cache_misses / cache_refs in percent (0 when unavailable).
  [[nodiscard]] double cache_miss_pct() const;
  /// branch_misses per 1000 instructions (0 when unavailable).
  [[nodiscard]] double branch_miss_per_kinstr() const;
  /// "ipc 1.23 | cache-miss 4.5% of 12.3M refs | branch-miss 0.8/kinstr"
  /// or "perf counters unavailable (<reason>)".
  [[nodiscard]] std::string to_line() const;
};

/// RAII owner of the perf event group. Construction opens the group
/// disabled; start()/stop() toggle counting; read() performs one grouped
/// read. All operations are safe no-ops when ok() is false.
class HwCounters {
 public:
  HwCounters();
  ~HwCounters();
  HwCounters(const HwCounters&) = delete;
  HwCounters& operator=(const HwCounters&) = delete;

  /// True when the leader (cycles) opened; member counters may still be
  /// individually absent.
  [[nodiscard]] bool ok() const { return leader_fd_ >= 0; }
  /// Human-readable reason when ok() is false ("perf_event_open:
  /// Permission denied", "not supported on this platform", ...).
  [[nodiscard]] const std::string& error() const { return error_; }

  /// Zeroes and enables the group.
  void start();
  /// Disables the group (values retained for read()).
  void stop();
  /// One grouped read of every member; invalid when !ok() or the group
  /// was never scheduled onto the PMU.
  [[nodiscard]] HwCounterValues read() const;

  /// Cheap process-wide probe: does opening a cycles counter work at
  /// all? Computed once, cached.
  [[nodiscard]] static bool available();

  /// Publishes `v` into `reg` as obs.hw.* counters (cycles,
  /// instructions, cache_refs, cache_misses, branch_misses). No-op for
  /// invalid values.
  static void publish(const HwCounterValues& v, MetricsRegistry& reg);

 private:
  struct Member {
    std::uint64_t id = 0;
    int fd = -1;
    std::uint64_t HwCounterValues::*field = nullptr;
  };
  int leader_fd_ = -1;
  std::uint64_t leader_id_ = 0;
  std::vector<Member> members_;
  std::string error_;
};

/// Span + counters over one scope: counts start at construction and are
/// published to MetricsRegistry::global() at destruction, alongside the
/// span's trace slice. Opt-in (constructing a perf group is a few
/// syscalls) — hot paths should keep using SNP_OBS_SPAN.
class HwCounterSpan {
 public:
  explicit HwCounterSpan(std::string name);
  ~HwCounterSpan();
  HwCounterSpan(const HwCounterSpan&) = delete;
  HwCounterSpan& operator=(const HwCounterSpan&) = delete;

  /// The most recent read (populated at destruction; valid earlier only
  /// via explicit sample()).
  [[nodiscard]] HwCounterValues sample() const;

 private:
  Span span_;
  HwCounters counters_;
};

}  // namespace snp::obs
