#include "obs/trace_context.hpp"

#include <atomic>

namespace snp::obs {

namespace {

std::atomic<std::uint64_t> g_next_trace_id{1};
thread_local TraceContext t_current{};

}  // namespace

std::uint64_t next_trace_id() {
  return g_next_trace_id.fetch_add(1, std::memory_order_relaxed);
}

TraceContext current_trace() { return t_current; }

ScopedTraceContext::ScopedTraceContext(TraceContext ctx) : saved_(t_current) {
  t_current = ctx;
}

ScopedTraceContext::~ScopedTraceContext() { t_current = saved_; }

}  // namespace snp::obs
