#include "obs/cost.hpp"

#include <cmath>
#include <limits>
#include <ostream>
#include <stdexcept>

namespace snp::obs {

std::atomic<bool> CostLedger::attribution_enabled_{true};

std::uint64_t quantize_cost_ns(double seconds) {
  if (!std::isfinite(seconds) || seconds <= 0.0) {
    return 0;
  }
  return static_cast<std::uint64_t>(std::llround(seconds * 1e9));
}

std::vector<std::uint64_t> split_exact(
    std::uint64_t total, std::span<const std::uint64_t> weights) {
  std::vector<std::uint64_t> shares(weights.size(), 0);
  if (weights.empty()) {
    return shares;
  }
  // 128-bit products: total and the cumulative weights are both u64, so
  // total * cum cannot overflow unsigned __int128.
  using u128 = unsigned __int128;
  u128 weight_sum = 0;
  for (const std::uint64_t w : weights) {
    weight_sum += w;
  }
  if (weight_sum == 0) {
    if (total != 0) {
      throw std::invalid_argument(
          "split_exact: nonzero total with all-zero weights");
    }
    return shares;
  }
  // Telescoping split: share i = floor(total*C[i+1]/W) - floor(total*C[i]/W)
  // with C the cumulative weight prefix. Adjacent floors share their
  // inner term, so the sum collapses to floor(total*W/W) = total exactly;
  // each share differs from the real-valued total*w[i]/W by less than 1.
  //
  // total*W fitting in 64 bits covers every realistic batch (ns totals
  // against row-count weights), and the hardware divide there is several
  // times cheaper than the library u128 divide — this runs once per
  // member per cost axis on the batch-completion path.
  constexpr std::uint64_t kU64Max =
      std::numeric_limits<std::uint64_t>::max();
  if (weight_sum <= kU64Max &&
      total <= kU64Max / static_cast<std::uint64_t>(weight_sum)) {
    const std::uint64_t w = static_cast<std::uint64_t>(weight_sum);
    std::uint64_t cum = 0;
    std::uint64_t prev_floor = 0;
    for (std::size_t i = 0; i < weights.size(); ++i) {
      cum += weights[i];
      const std::uint64_t next_floor = total * cum / w;
      shares[i] = next_floor - prev_floor;
      prev_floor = next_floor;
    }
    return shares;
  }
  u128 cum = 0;
  u128 prev_floor = 0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    cum += weights[i];
    const u128 next_floor = (static_cast<u128>(total) * cum) / weight_sum;
    shares[i] = static_cast<std::uint64_t>(next_floor - prev_floor);
    prev_floor = next_floor;
  }
  return shares;
}

std::vector<RequestCost> attribute_batch(
    const BatchCostTotals& batch, std::span<const std::uint64_t> trace_ids,
    std::span<const std::uint64_t> rows_owned) {
  if (trace_ids.size() != rows_owned.size()) {
    throw std::invalid_argument(
        "attribute_batch: trace_ids/rows_owned length mismatch");
  }
  const auto device = split_exact(batch.device_ns, rows_owned);
  const auto h2d = split_exact(batch.h2d_ns, rows_owned);
  const auto d2h = split_exact(batch.d2h_ns, rows_owned);
  const auto h2d_b = split_exact(batch.h2d_bytes, rows_owned);
  const auto d2h_b = split_exact(batch.d2h_bytes, rows_owned);
  const auto ops = split_exact(batch.wordops, rows_owned);

  std::vector<RequestCost> costs(trace_ids.size());
  for (std::size_t i = 0; i < costs.size(); ++i) {
    RequestCost& c = costs[i];
    c.trace_id = trace_ids[i];
    c.batch_id = batch.batch_id;
    c.batch_width = batch.width;
    c.rows = rows_owned[i];
    c.epoch = batch.epoch;
    c.degraded = batch.degraded;
    // Recovery surcharges are batch-scoped incidents (a retried H2D
    // stalls every member), so each member carries the full counts
    // rather than a split — the surcharge is the price of the company
    // you were coalesced with.
    c.retries = batch.retries;
    c.failovers = batch.failovers;
    c.device_ns = device[i];
    c.h2d_ns = h2d[i];
    c.d2h_ns = d2h[i];
    c.h2d_bytes = h2d_b[i];
    c.d2h_bytes = d2h_b[i];
    c.wordops = ops[i];
  }
  return costs;
}

void CostLedger::record_batch(const BatchCostTotals& batch,
                              std::span<const RequestCost> costs) {
  const std::lock_guard lock(mu_);
  batches_.push_back(batch);
  for (const RequestCost& c : costs) {
    requests_.push_back(c);
  }
  while (requests_.size() > kMaxRequests) {
    requests_.pop_front();
    dropped_++;
  }
  totals_.total_requests += costs.size();
  totals_.device_ns += batch.device_ns;
  totals_.h2d_ns += batch.h2d_ns;
  totals_.d2h_ns += batch.d2h_ns;
  totals_.h2d_bytes += batch.h2d_bytes;
  totals_.d2h_bytes += batch.d2h_bytes;
  totals_.wordops += batch.wordops;
  totals_.retries += batch.retries;
  totals_.failovers += batch.failovers;
  if (batch.degraded) {
    totals_.degraded_batches++;
  }
}

void CostLedger::record_cache_hit(const RequestCost& cost) {
  const std::lock_guard lock(mu_);
  requests_.push_back(cost);
  while (requests_.size() > kMaxRequests) {
    requests_.pop_front();
    dropped_++;
  }
  totals_.total_requests++;
  totals_.cache_hits++;
}

CostSnapshot CostLedger::snapshot() const {
  const std::lock_guard lock(mu_);
  CostSnapshot snap = totals_;
  snap.batches = batches_;
  snap.requests.assign(requests_.begin(), requests_.end());
  snap.dropped_requests = dropped_;
  return snap;
}

void CostLedger::clear() {
  const std::lock_guard lock(mu_);
  batches_.clear();
  requests_.clear();
  dropped_ = 0;
  totals_ = CostSnapshot{};
}

void CostLedger::write_json(std::ostream& os) const {
  const CostSnapshot snap = snapshot();
  os << "{\n  \"cost\": 1,\n  \"totals\": {"
     << "\"requests\": " << snap.total_requests
     << ", \"cache_hits\": " << snap.cache_hits
     << ", \"device_ns\": " << snap.device_ns
     << ", \"h2d_ns\": " << snap.h2d_ns << ", \"d2h_ns\": " << snap.d2h_ns
     << ", \"h2d_bytes\": " << snap.h2d_bytes
     << ", \"d2h_bytes\": " << snap.d2h_bytes
     << ", \"wordops\": " << snap.wordops
     << ", \"retries\": " << snap.retries
     << ", \"failovers\": " << snap.failovers
     << ", \"degraded_batches\": " << snap.degraded_batches
     << "},\n  \"dropped_requests\": " << snap.dropped_requests
     << ",\n  \"batches\": [";
  bool first = true;
  for (const BatchCostTotals& b : snap.batches) {
    os << (first ? "\n" : ",\n") << "    {\"batch\": " << b.batch_id
       << ", \"width\": " << b.width << ", \"rows\": " << b.rows
       << ", \"epoch\": " << b.epoch
       << ", \"device_ns\": " << b.device_ns << ", \"h2d_ns\": " << b.h2d_ns
       << ", \"d2h_ns\": " << b.d2h_ns << ", \"h2d_bytes\": " << b.h2d_bytes
       << ", \"d2h_bytes\": " << b.d2h_bytes
       << ", \"wordops\": " << b.wordops << ", \"retries\": " << b.retries
       << ", \"failovers\": " << b.failovers
       << ", \"degraded\": " << (b.degraded ? "true" : "false") << "}";
    first = false;
  }
  os << "\n  ],\n  \"requests\": [";
  first = true;
  for (const RequestCost& c : snap.requests) {
    // queue_wait_ns / service_ns are deliberately absent: measured wall
    // clock would break the byte-identical-replay contract.
    os << (first ? "\n" : ",\n") << "    {\"trace\": " << c.trace_id
       << ", \"batch\": " << c.batch_id << ", \"width\": " << c.batch_width
       << ", \"rows\": " << c.rows << ", \"epoch\": " << c.epoch
       << ", \"cache_hit\": " << (c.cache_hit ? "true" : "false")
       << ", \"degraded\": " << (c.degraded ? "true" : "false")
       << ", \"retries\": " << c.retries
       << ", \"failovers\": " << c.failovers
       << ", \"device_ns\": " << c.device_ns << ", \"h2d_ns\": " << c.h2d_ns
       << ", \"d2h_ns\": " << c.d2h_ns << ", \"h2d_bytes\": " << c.h2d_bytes
       << ", \"d2h_bytes\": " << c.d2h_bytes
       << ", \"wordops\": " << c.wordops << "}";
    first = false;
  }
  os << "\n  ]\n}\n";
}

}  // namespace snp::obs
