#include "obs/span.hpp"

#include <algorithm>
#include <ostream>
#include <utility>

#include "obs/trace_context.hpp"

namespace snp::obs {

namespace {

thread_local int t_span_depth = 0;

void emit_json_string(std::ostream& os, const std::string& s) {
  os << '"';
  for (const char ch : s) {
    switch (ch) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      default:
        if (static_cast<unsigned char>(ch) >= 0x20) {
          os << ch;
        }
    }
  }
  os << '"';
}

}  // namespace

void write_trace_events(std::span<const TrackLabel> tracks,
                        std::span<const TraceEvent> events,
                        std::ostream& os) {
  os << "[\n";
  bool first = true;
  for (const TrackLabel& t : tracks) {
    if (!first) {
      os << ",\n";
    }
    first = false;
    os << "  {\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": " << t.pid
       << ", \"tid\": " << t.tid << ", \"args\": {\"name\": ";
    emit_json_string(os, t.name);
    os << "}}";
  }
  std::vector<const TraceEvent*> flows;
  for (const TraceEvent& ev : events) {
    const bool on_flow = ev.flow_id != 0 && (ev.flow_phase == 's' ||
                                             ev.flow_phase == 't' ||
                                             ev.flow_phase == 'f');
    if (on_flow) {
      flows.push_back(&ev);
    }
    if (ev.dur_us <= 0.0 && !on_flow) {
      continue;  // zero-length slice (e.g. empty transfer)
    }
    if (!first) {
      os << ",\n";
    }
    first = false;
    os << "  {\"name\": ";
    emit_json_string(os, ev.name);
    if (ev.dur_us <= 0.0) {
      // Flow endpoint with no extent: a thread-scoped instant marker.
      os << ", \"ph\": \"i\", \"s\": \"t\", \"pid\": " << ev.pid
         << ", \"tid\": " << ev.tid << ", \"ts\": " << ev.ts_us;
    } else {
      os << ", \"ph\": \"X\", \"pid\": " << ev.pid << ", \"tid\": " << ev.tid
         << ", \"ts\": " << ev.ts_us << ", \"dur\": " << ev.dur_us;
    }
    os << ", \"args\": {\"depth\": " << ev.depth;
    if (ev.trace_id != 0) {
      os << ", \"trace\": " << ev.trace_id;
    }
    os << "}}";
  }
  // Flow records after the slices, in timestamp order per the Trace Event
  // Format contract: within one flow id the "s" record must precede every
  // "t" and the terminating "f". Each record binds to the enclosing slice
  // at the same pid/tid/ts emitted above.
  std::stable_sort(flows.begin(), flows.end(),
                   [](const TraceEvent* a, const TraceEvent* b) {
                     if (a->flow_id != b->flow_id) {
                       return a->flow_id < b->flow_id;
                     }
                     return a->ts_us < b->ts_us;
                   });
  for (const TraceEvent* ev : flows) {
    if (!first) {
      os << ",\n";
    }
    first = false;
    os << "  {\"name\": \"req\", \"cat\": \"req\", \"ph\": \""
       << ev->flow_phase << "\", \"id\": " << ev->flow_id
       << ", \"pid\": " << ev->pid << ", \"tid\": " << ev->tid
       << ", \"ts\": " << ev->ts_us;
    if (ev->flow_phase == 'f') {
      os << ", \"bp\": \"e\"";
    }
    os << "}";
  }
  os << "\n]\n";
}

TraceCollector::TraceCollector()
    : epoch_(std::chrono::steady_clock::now()) {}

TraceCollector& TraceCollector::global() {
  static TraceCollector collector;
  return collector;
}

void TraceCollector::record(TraceEvent ev) {
  if (!enabled()) {
    return;
  }
  const std::lock_guard lock(mu_);
  events_.push_back(std::move(ev));
}

void TraceCollector::instant(std::string name, std::uint64_t flow_id,
                             char flow_phase) {
  if (!enabled()) {
    return;
  }
  TraceEvent ev;
  ev.name = std::move(name);
  ev.pid = 1;
  ev.tid = thread_track();
  ev.ts_us = now_us();
  ev.dur_us = 0.0;
  ev.depth = t_span_depth;
  ev.trace_id = flow_id;
  ev.flow_id = flow_id;
  ev.flow_phase = flow_phase;
  record(std::move(ev));
}

std::vector<TraceEvent> TraceCollector::events() const {
  const std::lock_guard lock(mu_);
  return events_;
}

std::size_t TraceCollector::size() const {
  const std::lock_guard lock(mu_);
  return events_.size();
}

void TraceCollector::begin_session() {
  const std::lock_guard lock(mu_);
  events_.clear();
  epoch_ = std::chrono::steady_clock::now();
}

double TraceCollector::now_us() const {
  std::chrono::steady_clock::time_point epoch;
  {
    const std::lock_guard lock(mu_);
    epoch = epoch_;
  }
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - epoch)
      .count();
}

std::uint32_t TraceCollector::thread_track() {
  static std::atomic<std::uint32_t> next{0};
  thread_local std::uint32_t id =
      next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

Span::Span(std::string name, TraceCollector& collector)
    : collector_(collector), name_(std::move(name)) {
  if (!collector_.enabled()) {
    return;
  }
  active_ = true;
  depth_ = t_span_depth++;
  trace_id_ = current_trace().trace_id;
  start_us_ = collector_.now_us();
}

Span::~Span() {
  if (!active_) {
    return;
  }
  --t_span_depth;
  // Sampled at construction, so an end that races set_enabled(false)
  // still records a consistent slice; record() drops it if disabled.
  TraceEvent ev;
  ev.name = std::move(name_);
  ev.pid = 1;
  ev.tid = TraceCollector::thread_track();
  ev.ts_us = start_us_;
  ev.dur_us = collector_.now_us() - start_us_;
  ev.depth = depth_;
  ev.trace_id = trace_id_;
  if (trace_id_ != 0) {
    // Spans taken on behalf of a request are flow steps: Perfetto draws
    // the submit -> batch -> chunk -> resolve arrow chain through them.
    ev.flow_id = trace_id_;
    ev.flow_phase = 't';
  }
  collector_.record(std::move(ev));
}

int Span::current_depth() { return t_span_depth; }

}  // namespace snp::obs
