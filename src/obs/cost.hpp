// snp::obs — per-request cost ledger.
//
// The serving path batches many client queries into one core::compare
// launch, so the raw telemetry (device-sim seconds, H2D/D2H bytes,
// popcounted words) is naturally *per batch*. The ledger re-attributes
// those batch totals to the individual requests riding the batch, split
// by gamma-row ownership: request i owns the rows of the batched A
// operand it contributed, so it owns the same fraction of every cost
// axis. The streaming-GEMM literature the ROADMAP leans on wins by
// decomposing wall time into overlappable stages; this is the request-
// level ledger that makes the same decomposition answerable per query
// ("what did this request cost, and where?").
//
// Exactness contract (conformance-tested in tests/test_cost.cpp): the
// per-request shares of every integer cost axis sum *bit-identically*
// to the owning batch's totals. Floating-point splitting cannot promise
// that (rounded per-share values do not telescope), so the ledger's
// unit of account is integer nanoseconds / bytes / word-ops: batch
// totals are quantized once (quantize_cost_ns) and then divided by
// exact integer telescoping (split_exact) — share i is
// floor(total*C[i+1]/W) - floor(total*C[i]/W) over the cumulative
// weight prefix C, computed in 128-bit arithmetic, so the shares
// telescope to exactly `total` for any weights. Doubles appear only at
// presentation time.
//
// Determinism: device-sim time, bytes and word-ops are functions of the
// virtual clock, so under a scripted serve run (deterministic batch
// formation) the attributed costs — and the --cost-out JSON — are
// byte-identical across runs. Wall-clock fields (queue wait, service
// time) are measured, not simulated; they are kept out of the
// deterministic JSON document.
//
// The ledger compiles to nothing under SNPCMP_OBS=OFF like the rest of
// the obs stack (call sites are gated on obs::kEnabled); the runtime
// kill switch (set_attribution_enabled) exists so
// bench/abl_obs_overhead can price the always-on attribution cost the
// way it prices the flight recorder.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <iosfwd>
#include <mutex>
#include <span>
#include <vector>

namespace snp::obs {

/// What one request cost, attributed from its batch by row ownership.
/// Integer fields are exact shares (see split_exact); the two wall-clock
/// fields at the bottom are measured and therefore nondeterministic.
struct RequestCost {
  std::uint64_t trace_id = 0;
  std::uint64_t batch_id = 0;     ///< 0 for cache hits (no batch ridden)
  std::uint32_t batch_width = 0;  ///< requests in the owning batch
  std::uint64_t rows = 0;         ///< gamma rows this request contributed
  std::uint64_t epoch = 0;        ///< DB epoch the result was computed at
  bool cache_hit = false;
  bool degraded = false;   ///< owning batch finished on the CPU rung
  std::uint32_t retries = 0;    ///< recovery surcharge: batch retry count
  std::uint32_t failovers = 0;  ///< recovery surcharge: shard failovers
  std::uint64_t device_ns = 0;  ///< share of batched compute-engine time
  std::uint64_t h2d_ns = 0;     ///< share of copy-engine host->device time
  std::uint64_t d2h_ns = 0;     ///< share of copy-engine device->host time
  std::uint64_t h2d_bytes = 0;
  std::uint64_t d2h_bytes = 0;
  std::uint64_t wordops = 0;  ///< share of 32-bit words popcounted
  // -- measured wall clock (excluded from the deterministic JSON) ----------
  std::uint64_t queue_wait_ns = 0;  ///< enqueue -> batch formation
  std::uint64_t service_ns = 0;     ///< batch formation -> resolution
};

/// One batch's quantized cost totals — the thing the request shares must
/// sum back to, bit-identically.
struct BatchCostTotals {
  std::uint64_t batch_id = 0;
  std::uint32_t width = 0;  ///< requests coalesced into the batch
  std::uint64_t rows = 0;   ///< total gamma rows (== A-operand rows)
  std::uint64_t epoch = 0;
  bool degraded = false;
  std::uint32_t retries = 0;
  std::uint32_t failovers = 0;
  std::uint64_t device_ns = 0;
  std::uint64_t h2d_ns = 0;
  std::uint64_t d2h_ns = 0;
  std::uint64_t h2d_bytes = 0;
  std::uint64_t d2h_bytes = 0;
  std::uint64_t wordops = 0;
};

/// Quantizes a seconds value to the ledger's integer-nanosecond unit of
/// account (round-to-nearest; negative and non-finite inputs clamp to 0).
[[nodiscard]] std::uint64_t quantize_cost_ns(double seconds);

/// Splits `total` across `weights` exactly: returns shares such that
/// shares[i] is proportional to weights[i] (each off by at most one unit
/// from the real-valued split) and the shares sum bit-identically to
/// `total`. Zero-weight entries receive 0. Preconditions: when total > 0
/// the weights must not all be zero (the split would be undefined);
/// empty weights return an empty vector.
[[nodiscard]] std::vector<std::uint64_t> split_exact(
    std::uint64_t total, std::span<const std::uint64_t> weights);

/// Attributes a batch's totals to its member requests by row ownership.
/// `trace_ids[i]` / `rows_owned[i]` describe member i (spans must have
/// equal length == batch.width). Every integer axis of the returned
/// costs sums exactly to the batch totals; queue/service wall fields are
/// left zero for the caller to fill.
[[nodiscard]] std::vector<RequestCost> attribute_batch(
    const BatchCostTotals& batch, std::span<const std::uint64_t> trace_ids,
    std::span<const std::uint64_t> rows_owned);

/// Point-in-time copy of a ledger's records plus running totals.
struct CostSnapshot {
  std::vector<BatchCostTotals> batches;  ///< in execution order
  std::vector<RequestCost> requests;     ///< in recording order, FIFO-capped
  std::uint64_t dropped_requests = 0;    ///< evicted past kMaxRequests
  // Running totals over everything ever recorded (never evicted).
  std::uint64_t total_requests = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t device_ns = 0;
  std::uint64_t h2d_ns = 0;
  std::uint64_t d2h_ns = 0;
  std::uint64_t h2d_bytes = 0;
  std::uint64_t d2h_bytes = 0;
  std::uint64_t wordops = 0;
  std::uint64_t retries = 0;
  std::uint64_t failovers = 0;
  std::uint64_t degraded_batches = 0;
};

/// Thread-safe per-engine cost store. The recording paths are cold
/// relative to the kernel (once per batch / once per cache hit), so a
/// mutex is the right tool; the hot-path question is answered by the
/// paired A/B arm in bench/abl_obs_overhead.
class CostLedger {
 public:
  /// Bounded retention: per-request records beyond this are evicted FIFO
  /// (counted in dropped_requests); batch totals are small and kept.
  static constexpr std::size_t kMaxRequests = 1U << 16U;

  /// Process-wide runtime kill switch for attribution (the compile-time
  /// one is SNPCMP_OBS=OFF). Used by bench/abl_obs_overhead to price
  /// the always-on cost; production leaves it on.
  [[nodiscard]] static bool attribution_enabled() {
    return attribution_enabled_.load(std::memory_order_relaxed);
  }
  static void set_attribution_enabled(bool on) {
    attribution_enabled_.store(on, std::memory_order_relaxed);
  }

  /// Records one executed batch and its attributed member costs (spans
  /// the caller got from attribute_batch, wall fields filled in).
  void record_batch(const BatchCostTotals& batch,
                    std::span<const RequestCost> costs);
  /// Records one cache-hit shortcut (no batch ridden; all device axes 0).
  void record_cache_hit(const RequestCost& cost);

  [[nodiscard]] CostSnapshot snapshot() const;
  /// Drops all records and totals (tests / epoch-scoped accounting).
  void clear();

  /// Deterministic JSON document {"cost":1,...}: totals, batches, and
  /// per-request integer shares. Wall-clock fields are omitted so the
  /// document is byte-identical across scripted replays.
  void write_json(std::ostream& os) const;

 private:
  static std::atomic<bool> attribution_enabled_;

  mutable std::mutex mu_;
  std::vector<BatchCostTotals> batches_;
  std::deque<RequestCost> requests_;
  std::uint64_t dropped_ = 0;
  CostSnapshot totals_;  ///< only the running-total fields are used
};

}  // namespace snp::obs
