// snp::obs — umbrella header and the compile-time-gated instrumentation
// macros.
//
// Every instrumented call site in the framework goes through these macros
// rather than the classes directly, so a build configured with
// -DSNPCMP_OBS=OFF compiles the hot paths to literal no-ops: the metric
// name and delta expressions vanish from the translation unit — never
// evaluated, nothing emitted. With
// the default SNPCMP_OBS=ON, counters are single relaxed atomics and
// spans are two clock reads (none at all while the global TraceCollector
// is disabled, which is the default outside --trace-out runs).
//
// Usage:
//   SNP_OBS_SPAN("core.compare.pack");            // RAII scope slice
//   SNP_OBS_COUNT("core.h2d.bytes", raw.size());  // counter += delta
//   SNP_OBS_GAUGE_ADD("exec.pool.queue_depth", 1);
//   SNP_OBS_OBSERVE("exec.pool.task_run_seconds", dt);  // latency histo
//
// Metric handles are cached in function-local statics, so the registry
// lock is taken once per call site, not per call.
#pragma once

#include "obs/envinfo.hpp"
#include "obs/flight.hpp"
#include "obs/hwcounters.hpp"
#include "obs/metrics.hpp"
#include "obs/perf.hpp"
#include "obs/slo.hpp"
#include "obs/span.hpp"
#include "obs/stats.hpp"
#include "obs/trace_context.hpp"

// CMake defines SNPCMP_OBS_ENABLED=0/1 from option(SNPCMP_OBS).
// Standalone inclusion (no build-system definition) defaults to on.
#ifndef SNPCMP_OBS_ENABLED
#define SNPCMP_OBS_ENABLED 1
#endif

namespace snp::obs {
/// True in builds whose instrumentation macros are live.
inline constexpr bool kEnabled = SNPCMP_OBS_ENABLED != 0;
}  // namespace snp::obs

#define SNP_OBS_CONCAT_INNER(a, b) a##b
#define SNP_OBS_CONCAT(a, b) SNP_OBS_CONCAT_INNER(a, b)

#if SNPCMP_OBS_ENABLED

#define SNP_OBS_SPAN(name) \
  ::snp::obs::Span SNP_OBS_CONCAT(snp_obs_span_, __LINE__)(name)

#define SNP_OBS_COUNT(name, delta)                                    \
  do {                                                                \
    static ::snp::obs::Counter& snp_obs_c =                           \
        ::snp::obs::MetricsRegistry::global().counter(name);          \
    snp_obs_c.add(static_cast<std::uint64_t>(delta));                 \
  } while (0)

#define SNP_OBS_GAUGE_SET(name, value)                                \
  do {                                                                \
    static ::snp::obs::Gauge& snp_obs_g =                             \
        ::snp::obs::MetricsRegistry::global().gauge(name);            \
    snp_obs_g.set(static_cast<std::int64_t>(value));                  \
  } while (0)

#define SNP_OBS_GAUGE_ADD(name, delta)                                \
  do {                                                                \
    static ::snp::obs::Gauge& snp_obs_g =                             \
        ::snp::obs::MetricsRegistry::global().gauge(name);            \
    snp_obs_g.add(static_cast<std::int64_t>(delta));                  \
  } while (0)

#define SNP_OBS_GAUGE_SUB(name, delta)                                \
  do {                                                                \
    static ::snp::obs::Gauge& snp_obs_g =                             \
        ::snp::obs::MetricsRegistry::global().gauge(name);            \
    snp_obs_g.sub(static_cast<std::int64_t>(delta));                  \
  } while (0)

#define SNP_OBS_OBSERVE(name, seconds)                                \
  do {                                                                \
    static ::snp::obs::Histogram& snp_obs_h =                         \
        ::snp::obs::MetricsRegistry::global().histogram(              \
            name, ::snp::obs::Histogram::latency_bounds());           \
    snp_obs_h.observe(static_cast<double>(seconds));                  \
  } while (0)

// Flight-recorder append (obs/flight.hpp): kind, originating trace id,
// rt error code (0 outside fault paths), two kind-specific payloads.
#define SNP_OBS_FLIGHT(kind, trace, code, a, b)                       \
  ::snp::obs::FlightRecorder::global().record(                        \
      (kind), static_cast<std::uint64_t>(trace),                      \
      static_cast<std::uint32_t>(code), static_cast<std::int64_t>(a), \
      static_cast<std::int64_t>(b))

// Flow endpoint on the request arrow chain: phase 's' at ingress
// (submit), 'f' at resolution; spans in between are steps already.
#define SNP_OBS_FLOW_POINT(name, flow_id, phase)                      \
  ::snp::obs::TraceCollector::global().instant(                       \
      (name), static_cast<std::uint64_t>(flow_id), (phase))

#else  // SNPCMP_OBS=OFF: the arguments vanish — never evaluated.

#define SNP_OBS_NOOP(...) \
  do {                    \
  } while (0)

#define SNP_OBS_SPAN(name) SNP_OBS_NOOP(name)
#define SNP_OBS_COUNT(name, delta) SNP_OBS_NOOP(name, delta)
#define SNP_OBS_GAUGE_SET(name, value) SNP_OBS_NOOP(name, value)
#define SNP_OBS_GAUGE_ADD(name, delta) SNP_OBS_NOOP(name, delta)
#define SNP_OBS_GAUGE_SUB(name, delta) SNP_OBS_NOOP(name, delta)
#define SNP_OBS_OBSERVE(name, seconds) SNP_OBS_NOOP(name, seconds)
#define SNP_OBS_FLIGHT(kind, trace, code, a, b) \
  SNP_OBS_NOOP(kind, trace, code, a, b)
#define SNP_OBS_FLOW_POINT(name, flow_id, phase) \
  SNP_OBS_NOOP(name, flow_id, phase)

#endif  // SNPCMP_OBS_ENABLED
