// snp::obs — offline pipeline bottleneck analyzer (`snpcmp report`).
//
// The paper's Section VI argument is an accounting identity: achieved
// GOPS is explained by which pipe (PCIe H2D, kernel, D2H) saturates and
// how much of the transfer time the async pipeline hides behind compute.
// This module closes the loop on our own telemetry the same way: it
// ingests the artifacts a run already writes — the merged Perfetto trace
// (--trace-out), the metrics snapshot (--metrics-out JSON), and
// optionally the cost ledger (--cost-out) — and reduces them to the
// handful of numbers that say where the time went:
//
//   * per-track busy time and utilization over the trace span, so the
//     bottleneck engine is the first line read, not a Perfetto session;
//   * overlap efficiency: how much of the transfer time that could hide
//     behind compute actually did (1.0 = ideal pipelining, 0.0 = fully
//     serial), from the pid-0 device tracks;
//   * coalescing efficiency: achieved mean batch width over the
//     configured maximum (svc.batch.rows / svc.batches vs
//     svc.config.max_batch_rows);
//   * queue-wait vs service-time decomposition of request latency, from
//     the split svc.queue.wait_seconds / svc.service.time_seconds
//     histograms;
//   * a Little's-law consistency check: the dispatcher's queue-depth
//     time integral (svc.queue.depth_time_us) must equal the sum of
//     per-request queue waits — both sides are integrals of the same
//     step function, so disagreement beyond tolerance means the
//     telemetry itself is broken (lost requests, clock misuse);
//   * the top-N most expensive requests by attributed device time, from
//     the cost ledger document.
//
// Everything here is offline and deterministic: same input files, same
// report bytes. The JSON reader is a deliberately tiny recursive-descent
// parser (jsonlite) — enough for the three documents we emit ourselves,
// with strict error positions; it is not a general-purpose JSON library.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace snp::obs::jsonlite {

/// Parsed JSON value. Object member order is preserved (the writers emit
/// deterministic order; the parser keeps it so round-trip tests can diff
/// bytes). Numbers are doubles — the documents we parse keep integers
/// within the 2^53 exact range except trace/cost ids, which are re-read
/// via u64() from the raw token to stay exact.
struct Value {
  enum class Kind : std::uint8_t {
    kNull,
    kBool,
    kNumber,
    kString,
    kArray,
    kObject
  };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string text;  ///< string value, or the raw token of a number
  std::vector<Value> items;                            ///< array
  std::vector<std::pair<std::string, Value>> members;  ///< object

  [[nodiscard]] bool is_object() const { return kind == Kind::kObject; }
  [[nodiscard]] bool is_array() const { return kind == Kind::kArray; }
  [[nodiscard]] bool is_number() const { return kind == Kind::kNumber; }
  [[nodiscard]] bool is_string() const { return kind == Kind::kString; }

  /// Object member lookup; nullptr when absent or not an object.
  [[nodiscard]] const Value* find(std::string_view key) const;
  /// number value, or `fallback` when absent / not a number.
  [[nodiscard]] double num_or(std::string_view key, double fallback) const;
  /// Exact unsigned 64-bit read from the raw number token (doubles lose
  /// trace ids above 2^53); 0 on absence or non-number.
  [[nodiscard]] std::uint64_t u64_or(std::string_view key,
                                     std::uint64_t fallback) const;
  /// string value, or `fallback` when absent / not a string.
  [[nodiscard]] std::string_view str_or(std::string_view key,
                                        std::string_view fallback) const;
};

/// Parses one JSON document. Throws std::runtime_error with a byte
/// offset on malformed input or trailing garbage.
[[nodiscard]] Value parse(std::string_view text);

}  // namespace snp::obs::jsonlite

namespace snp::obs {

/// Busy time of one trace track (unique pid/tid) over the trace span.
struct TrackUtilization {
  std::uint32_t pid = 0;
  std::uint32_t tid = 0;
  std::string name;     ///< thread_name metadata, or "pid<p>/tid<t>"
  double busy_us = 0.0;  ///< sum of "X" slice durations on this track
  double utilization = 0.0;  ///< busy / trace span (0 when span is 0)
  std::uint64_t slices = 0;
};

/// One request row from the cost ledger document, ranked by attributed
/// device time (kernel + transfer shares).
struct ExpensiveRequest {
  std::uint64_t trace_id = 0;
  std::uint64_t batch_id = 0;
  std::uint64_t device_ns = 0;
  std::uint64_t h2d_ns = 0;
  std::uint64_t d2h_ns = 0;
  std::uint64_t h2d_bytes = 0;
  std::uint64_t d2h_bytes = 0;
  std::uint64_t wordops = 0;
  std::uint32_t retries = 0;
  std::uint32_t failovers = 0;
  bool cache_hit = false;
  bool degraded = false;
};

/// Little's-law consistency verdict. Both sides are integrals of the
/// same pending-queue step function — the dispatcher's depth-time
/// accumulator and the sum of per-request waits use the same enqueue and
/// batch-formation timestamps — so on a quiescent (drained) snapshot
/// they agree to integer-microsecond rounding. A relative error beyond
/// tolerance flags broken telemetry, not a slow service.
struct LittlesCheck {
  bool evaluated = false;  ///< inputs present (wait histogram + gauge)
  bool pass = false;
  double wait_sum_s = 0.0;        ///< Σ per-request queue waits (= λ·W·T)
  double depth_integral_s = 0.0;  ///< ∫ queue depth dt (gauge, µs→s)
  double rel_error = 0.0;
  double tolerance = 0.0;
  /// Presentation-side rates over the trace span (0 without a span):
  double lambda_per_s = 0.0;    ///< arrivals / span
  double mean_wait_s = 0.0;     ///< W
  double mean_depth = 0.0;      ///< depth integral / span
};

/// The analyzer's full output; see analyze_pipeline().
struct PipelineReport {
  // -- trace-derived --
  std::uint64_t trace_events = 0;
  double span_us = 0.0;  ///< max(ts+dur) − min(ts) over all slices
  std::vector<TrackUtilization> tracks;  ///< sorted by (pid, tid)
  bool has_device_tracks = false;        ///< any pid-0 slices seen
  double device_serial_us = 0.0;    ///< Σ busy over device engines
  double device_makespan_us = 0.0;  ///< extent of the pid-0 timeline
  double device_ideal_us = 0.0;     ///< max per-engine busy (perfect overlap)
  /// (serial − makespan) / (serial − ideal), clamped to [0,1]: the
  /// fraction of hideable time actually hidden. 1.0 when nothing was
  /// hideable (single engine active).
  double overlap_efficiency = 0.0;

  // -- metrics-derived --
  std::uint64_t batches = 0;
  std::uint64_t batched_rows = 0;
  std::int64_t max_batch_rows = 0;  ///< svc.config.max_batch_rows gauge
  double mean_batch_rows = 0.0;
  /// mean batch width / configured max width (0 when unknown).
  double coalescing_efficiency = 0.0;

  std::uint64_t wait_count = 0;  ///< requests in the wait histogram
  double mean_wait_s = 0.0;
  double p99_wait_le_s = 0.0;  ///< bucket upper bound (approx)
  double mean_service_s = 0.0;
  double p99_service_le_s = 0.0;
  /// mean wait / (mean wait + mean service): how much of a request's
  /// latency was spent queued rather than being served.
  double wait_share = 0.0;

  LittlesCheck littles;

  // -- cost-ledger-derived (empty without --cost) --
  bool has_cost = false;
  std::uint64_t cost_requests = 0;
  std::uint64_t cost_dropped = 0;
  std::vector<ExpensiveRequest> top_requests;  ///< ≤ top_n, by device time
};

struct ReportOptions {
  std::size_t top_n = 5;
  /// Little's-check relative-error tolerance. The identity is exact up
  /// to per-request integer-µs gauge rounding, but a default with slack
  /// keeps the check meaningful on snapshots taken mid-drain.
  double littles_tolerance = 0.10;
};

/// Reduces a merged trace document (the --trace-out array) and a metrics
/// snapshot document (the --metrics-out object) — plus, optionally, a
/// cost ledger document (--cost-out) — to a PipelineReport. Throws
/// std::runtime_error when `trace` is not an array or `metrics` is not
/// an object; absent metrics leave the corresponding sections zeroed.
[[nodiscard]] PipelineReport analyze_pipeline(
    const jsonlite::Value& trace, const jsonlite::Value& metrics,
    const jsonlite::Value* cost = nullptr, const ReportOptions& opts = {});

/// Renders the human-readable report block (the `snpcmp report` output).
/// Deterministic: fixed ordering, fixed formatting.
void write_pipeline_report(const PipelineReport& report, std::ostream& os);

}  // namespace snp::obs
