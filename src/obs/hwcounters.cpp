#include "obs/hwcounters.hpp"

#include <cmath>
#include <cstdio>

#include "obs/metrics.hpp"

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <system_error>
#endif

namespace snp::obs {

double HwCounterValues::ipc() const {
  if (!valid || !has_instructions || cycles == 0) {
    return 0.0;
  }
  return static_cast<double>(instructions) / static_cast<double>(cycles);
}

double HwCounterValues::cache_miss_pct() const {
  if (!valid || !has_cache || cache_refs == 0) {
    return 0.0;
  }
  return 100.0 * static_cast<double>(cache_misses) /
         static_cast<double>(cache_refs);
}

double HwCounterValues::branch_miss_per_kinstr() const {
  if (!valid || !has_branch || !has_instructions || instructions == 0) {
    return 0.0;
  }
  return 1000.0 * static_cast<double>(branch_misses) /
         static_cast<double>(instructions);
}

std::string HwCounterValues::to_line() const {
  if (!valid) {
    return "perf counters unavailable";
  }
  char buf[256];
  std::string line;
  std::snprintf(buf, sizeof buf, "%.3g cycles", static_cast<double>(cycles));
  line += buf;
  if (has_instructions) {
    std::snprintf(buf, sizeof buf, " | ipc %.2f", ipc());
    line += buf;
  }
  if (has_cache) {
    std::snprintf(buf, sizeof buf, " | cache-miss %.1f%% of %.3g refs",
                  cache_miss_pct(), static_cast<double>(cache_refs));
    line += buf;
  }
  if (has_branch && has_instructions) {
    std::snprintf(buf, sizeof buf, " | branch-miss %.2f/kinstr",
                  branch_miss_per_kinstr());
    line += buf;
  }
  if (scale > 1.001) {
    std::snprintf(buf, sizeof buf, " (multiplexed x%.2f)", scale);
    line += buf;
  }
  return line;
}

#if defined(__linux__)

namespace {

int perf_open(std::uint32_t type, std::uint64_t config, int group_fd) {
  perf_event_attr attr{};
  attr.size = sizeof(attr);
  attr.type = type;
  attr.config = config;
  attr.disabled = group_fd == -1 ? 1U : 0U;
  attr.exclude_kernel = 1;
  attr.exclude_hv = 1;
  attr.read_format = PERF_FORMAT_GROUP | PERF_FORMAT_ID |
                     PERF_FORMAT_TOTAL_TIME_ENABLED |
                     PERF_FORMAT_TOTAL_TIME_RUNNING;
  return static_cast<int>(syscall(SYS_perf_event_open, &attr, 0, -1,
                                  group_fd, 0));
}

std::uint64_t event_id(int fd) {
  std::uint64_t id = 0;
  if (ioctl(fd, PERF_EVENT_IOC_ID, &id) != 0) {
    return 0;
  }
  return id;
}

}  // namespace

HwCounters::HwCounters() {
  leader_fd_ = perf_open(PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES, -1);
  if (leader_fd_ < 0) {
    error_ = "perf_event_open: " + std::system_category().message(errno);
    return;
  }
  leader_id_ = event_id(leader_fd_);
  const struct {
    std::uint64_t config;
    std::uint64_t HwCounterValues::*field;
  } wanted[] = {
      {PERF_COUNT_HW_INSTRUCTIONS, &HwCounterValues::instructions},
      {PERF_COUNT_HW_CACHE_REFERENCES, &HwCounterValues::cache_refs},
      {PERF_COUNT_HW_CACHE_MISSES, &HwCounterValues::cache_misses},
      {PERF_COUNT_HW_BRANCH_MISSES, &HwCounterValues::branch_misses},
  };
  for (const auto& w : wanted) {
    const int fd = perf_open(PERF_TYPE_HARDWARE, w.config, leader_fd_);
    if (fd < 0) {
      continue;  // member individually unsupported; group stays usable
    }
    Member m;
    m.fd = fd;
    m.id = event_id(fd);
    m.field = w.field;
    members_.push_back(m);
  }
}

HwCounters::~HwCounters() {
  for (const auto& m : members_) {
    close(m.fd);
  }
  if (leader_fd_ >= 0) {
    close(leader_fd_);
  }
}

void HwCounters::start() {
  if (!ok()) {
    return;
  }
  ioctl(leader_fd_, PERF_EVENT_IOC_RESET, PERF_IOC_FLAG_GROUP);
  ioctl(leader_fd_, PERF_EVENT_IOC_ENABLE, PERF_IOC_FLAG_GROUP);
}

void HwCounters::stop() {
  if (!ok()) {
    return;
  }
  ioctl(leader_fd_, PERF_EVENT_IOC_DISABLE, PERF_IOC_FLAG_GROUP);
}

HwCounterValues HwCounters::read() const {
  HwCounterValues v;
  if (!ok()) {
    return v;
  }
  // PERF_FORMAT_GROUP layout: nr, time_enabled, time_running,
  // {value, id} x nr.
  constexpr std::size_t kMaxEvents = 8;
  std::uint64_t buf[3 + 2 * kMaxEvents] = {};
  const ssize_t got = ::read(leader_fd_, buf, sizeof buf);
  if (got < static_cast<ssize_t>(3 * sizeof(std::uint64_t))) {
    return v;
  }
  const std::uint64_t nr = buf[0];
  const std::uint64_t time_enabled = buf[1];
  const std::uint64_t time_running = buf[2];
  if (nr > kMaxEvents || time_running == 0) {
    return v;  // group never scheduled onto the PMU
  }
  v.scale = time_running > 0
                ? static_cast<double>(time_enabled) /
                      static_cast<double>(time_running)
                : 1.0;
  for (std::uint64_t i = 0; i < nr; ++i) {
    const std::uint64_t value = buf[3 + 2 * i];
    const std::uint64_t id = buf[3 + 2 * i + 1];
    const auto scaled = static_cast<std::uint64_t>(
        std::llround(static_cast<double>(value) * v.scale));
    if (id == leader_id_) {
      v.cycles = scaled;
      continue;
    }
    for (const auto& m : members_) {
      if (m.id == id) {
        v.*(m.field) = scaled;
        if (m.field == &HwCounterValues::instructions) {
          v.has_instructions = true;
        } else if (m.field == &HwCounterValues::cache_refs ||
                   m.field == &HwCounterValues::cache_misses) {
          v.has_cache = true;
        } else if (m.field == &HwCounterValues::branch_misses) {
          v.has_branch = true;
        }
        break;
      }
    }
  }
  v.valid = true;
  return v;
}

#else  // !__linux__: every operation is a documented no-op.

HwCounters::HwCounters() { error_ = "not supported on this platform"; }
HwCounters::~HwCounters() = default;
void HwCounters::start() {}
void HwCounters::stop() {}
HwCounterValues HwCounters::read() const { return {}; }

#endif  // __linux__

bool HwCounters::available() {
  static const bool cached = [] {
    const HwCounters probe;
    return probe.ok();
  }();
  return cached;
}

void HwCounters::publish(const HwCounterValues& v, MetricsRegistry& reg) {
  if (!v.valid) {
    return;
  }
  reg.counter("obs.hw.cycles").add(v.cycles);
  if (v.has_instructions) {
    reg.counter("obs.hw.instructions").add(v.instructions);
  }
  if (v.has_cache) {
    reg.counter("obs.hw.cache_refs").add(v.cache_refs);
    reg.counter("obs.hw.cache_misses").add(v.cache_misses);
  }
  if (v.has_branch) {
    reg.counter("obs.hw.branch_misses").add(v.branch_misses);
  }
}

HwCounterSpan::HwCounterSpan(std::string name)
    : span_(std::move(name)) {
  counters_.start();
}

HwCounterSpan::~HwCounterSpan() {
  counters_.stop();
  HwCounters::publish(counters_.read(), MetricsRegistry::global());
}

HwCounterValues HwCounterSpan::sample() const { return counters_.read(); }

}  // namespace snp::obs
