// snp::obs — SLO burn-rate monitor.
//
// Classic multi-window burn-rate alerting (SRE workbook style) over a
// per-class latency objective: every completed request is classified as
// within/over the objective, aggregated into small fixed-width time
// buckets, and two rolling windows — fast (default 1 s, catches sharp
// regressions) and slow (default 30 s, catches sustained burn) — are
// evaluated as
//
//   burn rate = (breach fraction over the window) / error budget
//
// so burn 1.0 means "spending budget exactly as fast as allowed",
// burn >= breach_burn_rate on BOTH windows trips the breach trigger
// (edge-detected), which the service uses to take a flight-recorder
// dump while the evidence is still in the rings.
//
// Exemplars: the monitor also maintains a latency histogram over
// Histogram::service_latency_bounds() where each bucket retains the
// most recent trace id observed in it — so "which request was that
// 250 ms outlier?" is answerable straight from the report.
//
// Thread safety: record()/snapshot() are mutex-protected; the monitor
// sits on the service's per-request completion path (thousands of QPS,
// not per-word), where a short critical section is fine.
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <vector>

namespace snp::obs {

struct SloOptions {
  double objective_s = 0.0;        ///< latency objective; 0 = no objective
  double error_budget = 0.01;      ///< allowed breach fraction (99% SLO)
  double fast_window_s = 1.0;      ///< sharp-regression window
  double slow_window_s = 30.0;     ///< sustained-burn window
  double breach_burn_rate = 10.0;  ///< trigger when both windows >= this
};

/// Point-in-time SLO state. Burn rates are 0 when the window is empty.
struct SloSnapshot {
  std::uint64_t total = 0;     ///< requests recorded
  std::uint64_t breaches = 0;  ///< requests over the objective
  double burn_fast = 0.0;
  double burn_slow = 0.0;
  std::uint64_t trips = 0;  ///< times the breach trigger edge fired
};

/// Per-bucket exemplar: the latest observation that landed in a latency
/// bucket, with the request that produced it.
struct SloExemplar {
  double latency_s = 0.0;
  std::uint64_t trace_id = 0;
};

class SloMonitor {
 public:
  explicit SloMonitor(SloOptions options);

  /// Records one completed request. Returns true when this observation
  /// tripped the breach trigger (both windows crossed breach_burn_rate,
  /// edge-detected — re-arms once burn drops below the threshold).
  /// Always feeds the exemplar histogram; burn-rate evaluation needs a
  /// nonzero objective.
  bool record(double latency_s, std::uint64_t trace_id);

  [[nodiscard]] SloSnapshot snapshot() const;
  [[nodiscard]] const SloOptions& options() const { return options_; }

  /// Histogram bounds / counts / per-bucket exemplars (one entry per
  /// bound plus overflow; exemplar is nullopt for untouched buckets).
  [[nodiscard]] const std::vector<double>& bounds() const { return bounds_; }
  [[nodiscard]] std::vector<std::uint64_t> bucket_counts() const;
  [[nodiscard]] std::vector<std::optional<SloExemplar>> exemplars() const;

  /// Honest bucket-resolution percentile over the recorded latencies:
  /// upper bound of the quantile's bucket (+inf in overflow, NaN when
  /// empty). Present with a '~' marker.
  [[nodiscard]] double percentile_le(double q) const;

 private:
  struct Bucket {
    std::int64_t index = 0;  ///< time bucket number (ts / width)
    std::uint64_t total = 0;
    std::uint64_t breaches = 0;
  };

  /// Breach fraction over the trailing `window_s`, divided by the error
  /// budget. Caller holds mu_.
  [[nodiscard]] double burn_rate_locked(double now_s, double window_s) const;
  void prune_locked(double now_s);

  SloOptions options_;
  std::vector<double> bounds_;
  const double bucket_width_s_;

  mutable std::mutex mu_;
  std::deque<Bucket> window_;  ///< trailing slow_window_s of time buckets
  std::vector<std::uint64_t> hist_counts_;
  std::vector<std::optional<SloExemplar>> hist_exemplars_;
  std::uint64_t total_ = 0;
  std::uint64_t breaches_ = 0;
  std::uint64_t trips_ = 0;
  bool armed_ = true;
  std::chrono::steady_clock::time_point epoch_;
};

}  // namespace snp::obs
