// snp::obs — statistically rigorous benchmark measurement.
//
// The paper's third contribution is a measurement methodology: hidden
// hardware parameters are recovered from repeated microbenchmark runs, not
// single-shot timings. This module gives every bench binary in the repo
// the same discipline — a sample vector becomes a robust Summary (median,
// MAD, outlier count, confidence interval) and a measurement loop becomes
// an adaptive repetition: run until the relative CI width hits a target or
// a time budget expires.
//
// Design choices, stated once:
//  - The central estimate is the MEDIAN, not the mean: timing noise is
//    one-sided (preemption, frequency ramps, cache pollution only ever
//    make a run slower), so the median tracks the undisturbed run.
//  - Spread is the MAD (median absolute deviation), scaled by 1.4826 to
//    be sigma-consistent under normality; outliers are samples more than
//    `outlier_mads` scaled MADs from the median (Iglewicz-Hoaglin).
//  - The reported CI is a percentile bootstrap on the median with a
//    deterministic RNG (same samples -> same interval, so test runs and
//    regression gates are reproducible). A t-based CI on the mean is also
//    computed for reference.
//  - Warmup (cold caches, lazy allocation, JIT-like first-touch effects)
//    is detected, not configured: leading samples that sit far above the
//    steady-state median are dropped before summarizing.
//
// Everything here is pure arithmetic over std types; no clocks except in
// run_benchmark's budget accounting.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <vector>

namespace snp::obs {

/// When to stop repeating a measurement. The loop runs at least
/// `min_reps` samples (hard floor 1), then continues until the relative
/// CI width reaches `target_rel_ci`, the wall budget `time_budget_s` is
/// spent, or `max_reps` is hit — whichever comes first.
struct RepetitionPolicy {
  std::size_t min_reps = 5;
  std::size_t max_reps = 200;
  double time_budget_s = 1.0;   ///< wall budget for the whole loop
  double target_rel_ci = 0.05;  ///< stop when rel. CI half-width <= this
  double confidence = 0.95;     ///< 0.95 or 0.99 (CI coverage)
  double outlier_mads = 3.5;    ///< scaled-MAD multiple for rejection
  std::size_t bootstrap_resamples = 200;  ///< 0 disables the bootstrap
  std::uint64_t seed = 0x5eedU;           ///< bootstrap RNG seed
};

/// Robust summary of one measurement's samples. `reps` is the number of
/// samples the estimates are computed from (after warmup and outlier
/// removal); `samples` is the raw count collected.
struct Summary {
  std::size_t samples = 0;
  std::size_t reps = 0;
  std::size_t warmup_dropped = 0;
  std::size_t outliers_dropped = 0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double stddev = 0.0;  ///< sample standard deviation (n-1)
  double median = 0.0;
  double mad = 0.0;  ///< scaled MAD (1.4826 x raw MAD)
  double ci_lo = 0.0;
  double ci_hi = 0.0;               ///< bootstrap CI on the median
  double mean_ci_halfwidth = 0.0;   ///< t-based CI half-width on the mean

  /// (ci_hi - ci_lo) / (2 |median|); 0 for a degenerate or empty summary.
  [[nodiscard]] double rel_ci_width() const;
  /// True when the two medians' confidence intervals overlap — i.e. the
  /// difference is not resolvable above the measured noise.
  [[nodiscard]] bool ci_overlaps(const Summary& other) const {
    return ci_lo <= other.ci_hi && other.ci_lo <= ci_hi;
  }
};

/// Median (by copy; O(n) nth_element). 0 for an empty vector.
[[nodiscard]] double median_of(std::vector<double> v);

/// Scaled median absolute deviation around `center` (1.4826 x raw MAD).
[[nodiscard]] double mad_of(std::span<const double> v, double center);

/// Index of the first steady-state sample: leading samples more than
/// `mads` scaled MADs above the median of the second half are treated as
/// warmup. At most half the samples are ever dropped; returns 0 when the
/// series starts steady (or is too short to judge, < 8 samples).
[[nodiscard]] std::size_t warmup_cutoff(std::span<const double> samples,
                                        double mads = 3.5);

/// Samples within `mads` scaled MADs of the median. Deterministic: the
/// same input always keeps the same subset, in input order. A zero MAD
/// (over half the samples identical) rejects nothing. `n_rejected`
/// (optional) receives the number removed.
[[nodiscard]] std::vector<double> reject_outliers(
    std::span<const double> samples, double mads,
    std::size_t* n_rejected = nullptr);

/// Two-sided Student-t critical value for `confidence` coverage at `df`
/// degrees of freedom (exact for df 1-2, Cornish-Fisher beyond; ~1e-3
/// accurate, plenty for stopping rules).
[[nodiscard]] double t_critical(double confidence, std::size_t df);

/// Full summary of a sample vector: warmup removal, outlier rejection,
/// robust location/spread, bootstrap CI on the median (deterministic via
/// policy.seed), t-CI on the mean.
[[nodiscard]] Summary summarize(std::span<const double> samples,
                                const RepetitionPolicy& policy = {});

/// Adaptive repetition driver: calls `sample_fn` (returning one
/// measurement, e.g. seconds) until the policy says stop, then returns
/// the summary of everything collected. Deterministic sample functions
/// (the cycle simulator) converge at `min_reps` with a zero-width CI.
[[nodiscard]] Summary run_benchmark(const std::function<double()>& sample_fn,
                                    const RepetitionPolicy& policy = {});

}  // namespace snp::obs
