#include "obs/flight.hpp"

#include <algorithm>
#include <charconv>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <ostream>

namespace snp::obs {

namespace {

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) {
    p <<= 1U;
  }
  return p;
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t' ||
                        s.front() == '\n' || s.front() == '\r')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t' ||
                        s.back() == '\n' || s.back() == '\r')) {
    s.remove_suffix(1);
  }
  return s;
}

std::size_t configured_capacity() {
  // NOLINTNEXTLINE(concurrency-mt-unsafe): read-once at ring setup;
  // nothing in the process ever calls setenv.
  const char* env = std::getenv("SNPCMP_FLIGHT_RING");
  if (env == nullptr) {
    return FlightRecorder::kDefaultCapacity;
  }
  if (const auto cap = parse_flight_ring(env)) {
    return *cap;
  }
  // Documented fallback: never throw over an env var — the recorder is
  // constructed lazily on a serving path's first record().
  std::fprintf(stderr,
               "snpcmp: ignoring invalid SNPCMP_FLIGHT_RING='%s' "
               "(expected an integer in [16, %zu]); using default %zu\n",
               env, FlightRecorder::kMaxCapacity,
               FlightRecorder::kDefaultCapacity);
  return FlightRecorder::kDefaultCapacity;
}

void emit_json_string(std::ostream& os, std::string_view s) {
  os << '"';
  for (const char ch : s) {
    switch (ch) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      default:
        if (static_cast<unsigned char>(ch) >= 0x20) {
          os << ch;
        }
    }
  }
  os << '"';
}

}  // namespace

const char* to_string(FlightKind kind) {
  switch (kind) {
    case FlightKind::kEnqueue:
      return "enqueue";
    case FlightKind::kCacheHit:
      return "cache-hit";
    case FlightKind::kShed:
      return "shed";
    case FlightKind::kBatch:
      return "batch";
    case FlightKind::kChunkPack:
      return "chunk-pack";
    case FlightKind::kChunkExec:
      return "chunk-exec";
    case FlightKind::kChunkDrain:
      return "chunk-drain";
    case FlightKind::kFault:
      return "fault";
    case FlightKind::kRetry:
      return "retry";
    case FlightKind::kResolve:
      return "resolve";
    case FlightKind::kEpoch:
      return "epoch";
    case FlightKind::kSloBreach:
      return "slo-breach";
    case FlightKind::kDeadlineShed:
      return "deadline-shed";
    case FlightKind::kBreaker:
      return "breaker";
    case FlightKind::kBrownout:
      return "brownout";
  }
  return "unknown";
}

/// Single-writer seqlock ring. Writer protocol per slot: seq -> odd,
/// store the five payload words, seq -> even; all accesses are atomic
/// (payload relaxed, seq release/acquire) so readers never race and a
/// torn slot is detected by an odd or changed sequence.
struct FlightRecorder::Ring {
  struct Slot {
    std::atomic<std::uint32_t> seq{0};
    std::atomic<std::uint64_t> w[5];
  };

  explicit Ring(std::uint32_t thread_index, std::size_t capacity)
      : thread(thread_index), mask(capacity - 1),
        slots(new Slot[capacity]) {}

  std::uint32_t thread;
  std::size_t mask;
  std::atomic<std::uint64_t> head{0};  ///< next write position
  std::unique_ptr<Slot[]> slots;
};

FlightRecorder::FlightRecorder() : FlightRecorder(configured_capacity()) {}

namespace {
std::uint64_t next_recorder_id() {
  static std::atomic<std::uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}
}  // namespace

FlightRecorder::FlightRecorder(std::size_t capacity)
    : id_(next_recorder_id()),
      capacity_(round_up_pow2(std::max<std::size_t>(capacity, 16))),
      epoch_(std::chrono::steady_clock::now()) {}

FlightRecorder::~FlightRecorder() = default;

FlightRecorder& FlightRecorder::global() {
  static FlightRecorder* recorder = new FlightRecorder();  // never destroyed
  return *recorder;
}

FlightRecorder::Ring* FlightRecorder::ring_for_this_thread() {
  // Per-thread ring cache, keyed by the recorder's never-reused instance
  // id rather than its address: a destroyed test recorder whose address
  // is recycled by a new one must not alias the stale cached ring (the
  // old ring is freed with its owner). A thread that alternates between
  // two live recorders re-registers a fresh ring on each switch — fine
  // for tests; production threads only ever touch global().
  thread_local std::uint64_t t_ring_owner = 0;
  thread_local Ring* t_ring = nullptr;
  if (t_ring_owner == id_ && t_ring != nullptr) {
    return t_ring;
  }
  const std::lock_guard lock(mu_);
  auto ring = std::make_unique<Ring>(
      static_cast<std::uint32_t>(rings_.size()), capacity_);
  t_ring = ring.get();
  t_ring_owner = id_;
  rings_.push_back(std::move(ring));
  return t_ring;
}

void FlightRecorder::record(FlightKind kind, std::uint64_t trace_id,
                            std::uint32_t code, std::int64_t a,
                            std::int64_t b) {
  if (!enabled()) {
    return;
  }
  Ring* ring = ring_for_this_thread();
  const auto ts_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
  const std::uint64_t pos = ring->head.load(std::memory_order_relaxed);
  Ring::Slot& slot = ring->slots[pos & ring->mask];
  const std::uint32_t seq0 = slot.seq.load(std::memory_order_relaxed);
  slot.seq.store(seq0 + 1, std::memory_order_relaxed);  // odd: in progress
  // Release fence: any reader that observes one of the payload stores
  // below and then fences (snapshot's acquire fence) is guaranteed to
  // also observe the odd sequence, so mixed-generation reads are
  // rejected by the s1 != s2 check.
  std::atomic_thread_fence(std::memory_order_release);
  slot.w[0].store(ts_ns, std::memory_order_relaxed);
  slot.w[1].store(trace_id, std::memory_order_relaxed);
  slot.w[2].store((static_cast<std::uint64_t>(kind) << 32U) | code,
                  std::memory_order_relaxed);
  slot.w[3].store(static_cast<std::uint64_t>(a), std::memory_order_relaxed);
  slot.w[4].store(static_cast<std::uint64_t>(b), std::memory_order_relaxed);
  slot.seq.store(seq0 + 2, std::memory_order_release);  // even: committed
  ring->head.store(pos + 1, std::memory_order_release);
}

std::vector<FlightRecord> FlightRecorder::snapshot() const {
  std::vector<FlightRecord> out;
  const std::lock_guard lock(mu_);
  for (const auto& ring : rings_) {
    const std::uint64_t head = ring->head.load(std::memory_order_acquire);
    const std::uint64_t cap = ring->mask + 1;
    const std::uint64_t first = head > cap ? head - cap : 0;
    for (std::uint64_t pos = first; pos < head; ++pos) {
      const Ring::Slot& slot = ring->slots[pos & ring->mask];
      const std::uint32_t s1 = slot.seq.load(std::memory_order_acquire);
      if ((s1 & 1U) != 0) {
        continue;  // mid-write
      }
      FlightRecord rec;
      const std::uint64_t ts_ns = slot.w[0].load(std::memory_order_relaxed);
      rec.trace_id = slot.w[1].load(std::memory_order_relaxed);
      const std::uint64_t kc = slot.w[2].load(std::memory_order_relaxed);
      rec.a = static_cast<std::int64_t>(
          slot.w[3].load(std::memory_order_relaxed));
      rec.b = static_cast<std::int64_t>(
          slot.w[4].load(std::memory_order_relaxed));
      std::atomic_thread_fence(std::memory_order_acquire);
      const std::uint32_t s2 = slot.seq.load(std::memory_order_relaxed);
      if (s1 != s2) {
        continue;  // overwritten while reading
      }
      rec.ts_us = static_cast<double>(ts_ns) * 1e-3;
      rec.thread = ring->thread;
      rec.kind = static_cast<FlightKind>(kc >> 32U);
      rec.code = static_cast<std::uint32_t>(kc & 0xffffffffULL);
      out.push_back(rec);
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const FlightRecord& x, const FlightRecord& y) {
                     return x.ts_us < y.ts_us;
                   });
  return out;
}

std::uint64_t FlightRecorder::dropped() const {
  const std::lock_guard lock(mu_);
  std::uint64_t total = 0;
  for (const auto& ring : rings_) {
    const std::uint64_t head = ring->head.load(std::memory_order_acquire);
    const std::uint64_t cap = ring->mask + 1;
    total += head > cap ? head - cap : 0;
  }
  return total;
}

void FlightRecorder::set_code_namer(CodeNamer namer) {
  namer_.store(namer, std::memory_order_relaxed);
}

void FlightRecorder::set_dump_path(std::string path) {
  const std::lock_guard lock(mu_);
  dump_path_ = std::move(path);
}

std::string FlightRecorder::dump_path() const {
  const std::lock_guard lock(mu_);
  return dump_path_;
}

void FlightRecorder::dump_json(std::ostream& os,
                               std::string_view reason) const {
  const auto events = snapshot();
  const CodeNamer namer = namer_.load(std::memory_order_relaxed);
  os << "{\n  \"flight\": 1,\n  \"reason\": ";
  emit_json_string(os, reason);
  os << ",\n  \"ring_capacity\": " << capacity_
     << ",\n  \"dropped\": " << dropped() << ",\n  \"events\": [";
  bool first = true;
  for (const FlightRecord& ev : events) {
    os << (first ? "\n" : ",\n");
    first = false;
    os << "    {\"ts_us\": " << ev.ts_us << ", \"thread\": " << ev.thread
       << ", \"kind\": \"" << to_string(ev.kind) << "\", \"trace\": "
       << ev.trace_id;
    if (ev.code != 0) {
      os << ", \"code\": ";
      const std::string_view name =
          namer != nullptr ? namer(ev.code) : std::string_view{};
      if (!name.empty()) {
        emit_json_string(os, name);
      } else {
        os << ev.code;
      }
    }
    os << ", \"a\": " << ev.a << ", \"b\": " << ev.b << "}";
  }
  os << "\n  ]\n}\n";
}

bool FlightRecorder::dump_to_file(const std::string& path,
                                  std::string_view reason) const {
  std::ofstream os(path);
  if (!os) {
    return false;
  }
  dump_json(os, reason);
  return os.good();
}

std::string FlightRecorder::auto_dump(std::string_view reason) const {
  std::string path = dump_path();
  if (path.empty()) {
    // NOLINTNEXTLINE(concurrency-mt-unsafe): read-only env access;
    // nothing in the process ever calls setenv.
    if (const char* env = std::getenv("SNPCMP_FLIGHT_OUT")) {
      // Blank (empty or whitespace-only) values are treated as unset:
      // `SNPCMP_FLIGHT_OUT= snpcmp ...` and stray-space exports must not
      // produce a dump file named " ".
      path = std::string(trim(env));
    }
  }
  if (path.empty()) {
    return {};
  }
  return dump_to_file(path, reason) ? path : std::string{};
}

std::optional<std::size_t> parse_flight_ring(std::string_view text) {
  const std::string_view t = trim(text);
  if (t.empty()) {
    return std::nullopt;
  }
  std::uint64_t n = 0;
  const char* begin = t.data();
  const char* end = begin + t.size();
  const auto [ptr, ec] = std::from_chars(begin, end, n, 10);
  if (ec != std::errc{} || ptr != end) {
    return std::nullopt;  // non-digits, trailing garbage, sign, overflow
  }
  if (n < 16 || n > FlightRecorder::kMaxCapacity) {
    return std::nullopt;
  }
  return round_up_pow2(static_cast<std::size_t>(n));
}

void FlightRecorder::clear() {
  const std::lock_guard lock(mu_);
  for (auto& ring : rings_) {
    // Only safe while the owning thread is not appending; tests clear
    // between phases. Bump every slot's seq by 2 (stays even) after
    // zeroing head so concurrent snapshots drop stale reads.
    ring->head.store(0, std::memory_order_release);
    for (std::size_t i = 0; i <= ring->mask; ++i) {
      ring->slots[i].seq.fetch_add(2, std::memory_order_release);
    }
  }
}

}  // namespace snp::obs
