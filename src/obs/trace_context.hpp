// snp::obs — request-scoped trace-context propagation.
//
// A TraceContext carries the trace id of the request (or other unit of
// work) the current thread is working on behalf of. Ids are allocated
// from a process-wide counter at the point of ingress (svc submit), are
// never reused, and id 0 means "no context". The context is a plain
// thread-local: installing one costs a pointer-sized store, reading one
// a pointer-sized load, so propagation stays on even when the rest of
// obs is compiled away — trace ids double as request identity in
// service results, not just telemetry.
//
// Propagation points:
//   - svc::ServiceEngine::submit() allocates the id;
//   - the svc dispatcher installs the batch root's context before
//     posting batch execution to the pool;
//   - exec::ThreadPool::post() captures the poster's context into the
//     queued task and the worker re-installs it around the task body,
//     which transitively covers exec::TaskGraph (successors are posted
//     from inside a worker's task scope);
//   - rt::with_retry stamps the ambient id into every FaultEvent and
//     flight-recorder fault/retry record;
//   - obs::Span snapshots the ambient id so every slice (svc.batch,
//     core.chunk.pack/execute/drain, ...) is taggable and flow-linkable
//     back to the originating request.
#pragma once

#include <cstdint>

namespace snp::obs {

/// The ambient unit-of-work identity. 0 = no context. `deadline_s`
/// carries the unit's remaining end-to-end budget at the point the
/// context was installed (0 = none) — a plain double, not an rt type,
/// because obs must not depend on rt; the svc dispatcher stamps it when
/// installing a batch root's context so downstream spans and dumps can
/// report how much budget a slice had left.
struct TraceContext {
  std::uint64_t trace_id = 0;
  double deadline_s = 0.0;
  [[nodiscard]] constexpr bool valid() const { return trace_id != 0; }
};

/// Allocates the next process-wide trace id (1, 2, 3, ...). Never
/// returns 0. Deterministic in allocation order, so single-threaded
/// submission scripts get reproducible ids.
[[nodiscard]] std::uint64_t next_trace_id();

/// The calling thread's current context ({0} when none installed).
[[nodiscard]] TraceContext current_trace();

/// RAII installer: saves the calling thread's context, installs `ctx`,
/// restores the saved context on destruction. Nests freely.
class ScopedTraceContext {
 public:
  explicit ScopedTraceContext(TraceContext ctx);
  ~ScopedTraceContext();
  ScopedTraceContext(const ScopedTraceContext&) = delete;
  ScopedTraceContext& operator=(const ScopedTraceContext&) = delete;

 private:
  TraceContext saved_;
};

}  // namespace snp::obs
