#include "obs/stats.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <numeric>

namespace snp::obs {

namespace {

/// sigma-consistency factor for the MAD under normality.
constexpr double kMadScale = 1.4826;

/// splitmix64: deterministic, seedable, good enough for bootstrap
/// resampling indices.
std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Acklam's rational approximation of the standard normal quantile
/// (|error| < 1.15e-9 over (0, 1)).
double normal_quantile(double p) {
  constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                          -2.759285104469687e+02, 1.383577518672690e+02,
                          -3.066479806614716e+01, 2.506628277459239e+00};
  constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                          -1.556989798598866e+02, 6.680131188771972e+01,
                          -1.328068155288572e+01};
  constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                          -2.400758277161838e+00, -2.549732539343734e+00,
                          4.374664141464968e+00,  2.938163982698783e+00};
  constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                          2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double p_low = 0.02425;
  if (p <= 0.0 || p >= 1.0) {
    return 0.0;  // callers clamp; keep this total
  }
  if (p < p_low) {
    const double q = std::sqrt(-2.0 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
            c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  if (p <= 1.0 - p_low) {
    const double q = p - 0.5;
    const double r = q * q;
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r +
            a[5]) *
           q /
           (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r +
            1.0);
  }
  const double q = std::sqrt(-2.0 * std::log(1.0 - p));
  return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
           c[5]) /
         ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
}

/// Quantile of an already-sorted vector (linear interpolation).
double sorted_quantile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) {
    return 0.0;
  }
  const double pos =
      q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

}  // namespace

double Summary::rel_ci_width() const {
  const double denom = std::abs(median);
  if (denom <= 0.0 || reps == 0) {
    return 0.0;
  }
  return (ci_hi - ci_lo) / (2.0 * denom);
}

double median_of(std::vector<double> v) {
  if (v.empty()) {
    return 0.0;
  }
  const std::size_t mid = v.size() / 2;
  std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid),
                   v.end());
  const double upper = v[mid];
  if (v.size() % 2 == 1) {
    return upper;
  }
  const double lower =
      *std::max_element(v.begin(),
                        v.begin() + static_cast<std::ptrdiff_t>(mid));
  return 0.5 * (lower + upper);
}

double mad_of(std::span<const double> v, double center) {
  if (v.empty()) {
    return 0.0;
  }
  std::vector<double> dev(v.size());
  std::transform(v.begin(), v.end(), dev.begin(),
                 [center](double x) { return std::abs(x - center); });
  return kMadScale * median_of(std::move(dev));
}

std::size_t warmup_cutoff(std::span<const double> samples, double mads) {
  if (samples.size() < 8) {
    return 0;
  }
  // Steady-state reference: the second half of the series, which by
  // construction excludes any initial transient of bounded length.
  const std::size_t half = samples.size() / 2;
  const std::vector<double> tail(samples.begin() +
                                     static_cast<std::ptrdiff_t>(half),
                                 samples.end());
  const double med = median_of(tail);
  double spread = mad_of(std::span<const double>(tail), med);
  // Degenerate tail (all equal): allow a sliver of relative tolerance so
  // deterministic series never flag warmup.
  if (spread <= 0.0) {
    spread = 1e-9 * std::max(std::abs(med), 1e-300);
  }
  std::size_t cut = 0;
  while (cut < half && samples[cut] - med > mads * spread) {
    ++cut;
  }
  return cut;
}

std::vector<double> reject_outliers(std::span<const double> samples,
                                    double mads, std::size_t* n_rejected) {
  std::vector<double> kept;
  kept.reserve(samples.size());
  const double med =
      median_of(std::vector<double>(samples.begin(), samples.end()));
  const double spread = mad_of(samples, med);
  if (spread <= 0.0) {
    kept.assign(samples.begin(), samples.end());
    if (n_rejected != nullptr) {
      *n_rejected = 0;
    }
    return kept;
  }
  for (const double x : samples) {
    if (std::abs(x - med) <= mads * spread) {
      kept.push_back(x);
    }
  }
  if (n_rejected != nullptr) {
    *n_rejected = samples.size() - kept.size();
  }
  return kept;
}

double t_critical(double confidence, std::size_t df) {
  if (df == 0) {
    return 0.0;
  }
  const double c = std::clamp(confidence, 0.5, 0.9999);
  const double p = 1.0 - (1.0 - c) / 2.0;  // one-sided tail point
  if (df == 1) {
    return std::tan(3.14159265358979323846 * (p - 0.5));
  }
  if (df == 2) {
    const double a = 2.0 * p - 1.0;
    return a * std::sqrt(2.0 / (1.0 - a * a));
  }
  // Cornish-Fisher expansion around the normal quantile; good to ~1e-3
  // for df >= 3.
  const double z = normal_quantile(p);
  const double v = static_cast<double>(df);
  const double z3 = z * z * z;
  const double z5 = z3 * z * z;
  const double z7 = z5 * z * z;
  return z + (z3 + z) / (4.0 * v) +
         (5.0 * z5 + 16.0 * z3 + 3.0 * z) / (96.0 * v * v) +
         (3.0 * z7 + 19.0 * z5 + 17.0 * z3 - 15.0 * z) /
             (384.0 * v * v * v);
}

Summary summarize(std::span<const double> samples,
                  const RepetitionPolicy& policy) {
  Summary s;
  s.samples = samples.size();
  if (samples.empty()) {
    return s;
  }

  const std::size_t cut = warmup_cutoff(samples, policy.outlier_mads);
  s.warmup_dropped = cut;
  const auto steady = samples.subspan(cut);

  const std::vector<double> kept =
      reject_outliers(steady, policy.outlier_mads, &s.outliers_dropped);
  s.reps = kept.size();
  if (kept.empty()) {
    return s;
  }

  const auto [mn, mx] = std::minmax_element(kept.begin(), kept.end());
  s.min = *mn;
  s.max = *mx;
  s.mean = std::accumulate(kept.begin(), kept.end(), 0.0) /
           static_cast<double>(kept.size());
  if (kept.size() > 1) {
    double ss = 0.0;
    for (const double x : kept) {
      ss += (x - s.mean) * (x - s.mean);
    }
    s.stddev = std::sqrt(ss / static_cast<double>(kept.size() - 1));
    s.mean_ci_halfwidth =
        t_critical(policy.confidence, kept.size() - 1) * s.stddev /
        std::sqrt(static_cast<double>(kept.size()));
  }
  s.median = median_of(kept);
  s.mad = mad_of(std::span<const double>(kept), s.median);

  // Percentile bootstrap on the median. Deterministic by construction:
  // fixed seed, fixed resample count, fixed sample order.
  if (policy.bootstrap_resamples == 0 || kept.size() == 1 ||
      s.mad <= 0.0) {
    // Degenerate spread (or bootstrap disabled): the median is the
    // interval. With outliers already rejected this is the honest answer
    // for deterministic measurements.
    s.ci_lo = s.median;
    s.ci_hi = s.median;
    if (policy.bootstrap_resamples == 0 && s.mad > 0.0) {
      // No bootstrap requested but real spread: fall back to the t-CI
      // shape centered on the median.
      s.ci_lo = s.median - s.mean_ci_halfwidth;
      s.ci_hi = s.median + s.mean_ci_halfwidth;
    }
    return s;
  }
  std::uint64_t rng = policy.seed;
  std::vector<double> medians;
  medians.reserve(policy.bootstrap_resamples);
  std::vector<double> resample(kept.size());
  for (std::size_t b = 0; b < policy.bootstrap_resamples; ++b) {
    for (std::size_t i = 0; i < kept.size(); ++i) {
      resample[i] = kept[splitmix64(rng) % kept.size()];
    }
    medians.push_back(median_of(resample));
  }
  std::sort(medians.begin(), medians.end());
  const double alpha = (1.0 - policy.confidence) / 2.0;
  s.ci_lo = sorted_quantile(medians, alpha);
  s.ci_hi = sorted_quantile(medians, 1.0 - alpha);
  return s;
}

Summary run_benchmark(const std::function<double()>& sample_fn,
                      const RepetitionPolicy& policy) {
  using clock = std::chrono::steady_clock;
  const auto t0 = clock::now();
  const auto elapsed = [&t0] {
    return std::chrono::duration<double>(clock::now() - t0).count();
  };
  const std::size_t floor_reps = std::max<std::size_t>(
      1, std::min<std::size_t>(3, policy.min_reps));
  std::vector<double> samples;
  samples.reserve(policy.min_reps);
  while (true) {
    samples.push_back(sample_fn());
    if (samples.size() < floor_reps) {
      continue;
    }
    if (samples.size() < policy.min_reps) {
      // Below min_reps only a badly blown budget stops the loop (a
      // single sample costing multiples of the budget).
      if (elapsed() > 4.0 * policy.time_budget_s) {
        break;
      }
      continue;
    }
    const Summary s = summarize(samples, policy);
    if (s.reps > 0 && s.rel_ci_width() <= policy.target_rel_ci) {
      break;
    }
    if (samples.size() >= policy.max_reps ||
        elapsed() >= policy.time_budget_s) {
      break;
    }
  }
  return summarize(samples, policy);
}

}  // namespace snp::obs
