// snp::obs — RAII scoped spans and the unified trace collector.
//
// A Span marks a scope on the wall clock; on destruction it appends one
// complete Chrome Trace Event ("ph": "X") to a TraceCollector. Spans nest
// naturally: a thread-local depth counter tracks the open-span stack so
// collectors (and tests) can verify containment, and Perfetto renders
// same-thread nesting automatically from the duration intervals.
//
// The TraceCollector is the single funnel every trace source in the
// framework feeds: host spans (this module), the simulated device
// timeline, and the async chunk pipeline's per-stage events (both adapted
// in sim/trace.hpp) all become TraceEvents and share one JSON emitter —
// one merged, Perfetto-loadable file per run instead of the historical
// two disjoint writers.
//
// Cost model: the collector is disabled by default; a disabled collector
// makes Span construction two steady_clock-free atomic loads. When
// enabled, each span costs two clock reads and one mutex-protected
// append. Compile with SNPCMP_OBS=OFF (see obs/obs.hpp) to remove the
// macro call sites entirely.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <span>
#include <string>
#include <vector>

namespace snp::obs {

/// One complete Chrome Trace Event Format slice. `pid` groups tracks
/// (process rows in Perfetto); `tid` is the track within the group.
/// Convention used by the merged trace: pid 0 = simulated device engines,
/// pid 1 = host threads (spans), pid 2 = host pipeline stages.
///
/// A slice may additionally carry request-trace linkage: `trace_id` tags
/// the slice (emitted into "args" for grep/conformance), and a nonzero
/// `flow_id` makes the emitter append a Perfetto flow record ("ph"
/// "s"/"t"/"f", chained by `flow_id`) bound to the slice start, so all
/// work done on behalf of one request is drawn as one arrow chain. An
/// event with `dur_us == 0` and a nonzero `flow_id` is emitted as an
/// instant ("ph" "i") plus its flow record — the submit/resolve
/// endpoints of a request chain; flowless zero-duration events are still
/// dropped (e.g. empty transfers).
struct TraceEvent {
  std::string name;
  std::uint32_t pid = 1;
  std::uint32_t tid = 0;
  double ts_us = 0.0;   ///< slice start, microseconds
  double dur_us = 0.0;  ///< slice duration, microseconds
  int depth = 0;        ///< open-span nesting depth at slice start
  std::uint64_t trace_id = 0;  ///< originating request (0 = none)
  std::uint64_t flow_id = 0;   ///< flow chain id (0 = not on a flow)
  char flow_phase = 0;         ///< 's' start | 't' step | 'f' finish
};

/// Named track label: emitted as thread_name metadata so Perfetto shows
/// "h2d copy (titanv)" instead of "tid 1".
struct TrackLabel {
  std::uint32_t pid = 0;
  std::uint32_t tid = 0;
  std::string name;
};

/// Shared Trace Event Format emitter: metadata records for `tracks`, then
/// one "X" (or, for flow endpoints, "i") event per TraceEvent, then the
/// flow records ("s"/"t"/"f") of every flow-carrying event, sorted by
/// timestamp so each chain's arrows read start -> steps -> finish. Every
/// trace writer in the framework (simulated timeline, host pipeline,
/// spans, merged) funnels through this, so the JSON dialect is defined in
/// exactly one place.
void write_trace_events(std::span<const TrackLabel> tracks,
                        std::span<const TraceEvent> events,
                        std::ostream& os);

/// Thread-safe append-only event sink with a process-wide instance.
/// Disabled by default: record() is dropped (and Span skips its clock
/// reads) until set_enabled(true), so library users who never ask for a
/// trace never pay for one or grow one.
class TraceCollector {
 public:
  [[nodiscard]] static TraceCollector& global();
  /// Standalone collectors are for tests; production spans record into
  /// global() via the SNP_OBS_SPAN macro.
  TraceCollector();

  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }
  [[nodiscard]] bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  void record(TraceEvent ev);
  /// Records a zero-duration flow endpoint ("ph" "i" + flow record) at
  /// the current session time on the calling thread's host track:
  /// phase 's' opens a request's flow chain (submit), 'f' closes it
  /// (resolve). No-op while disabled.
  void instant(std::string name, std::uint64_t flow_id, char flow_phase);
  [[nodiscard]] std::vector<TraceEvent> events() const;
  [[nodiscard]] std::size_t size() const;
  /// Clears events and re-zeroes the timestamp epoch: spans recorded after
  /// begin_session() have ts_us relative to this call — the natural "t=0
  /// is when the command started" origin for per-run traces.
  void begin_session();

  /// Microseconds since the collector epoch (begin_session, or collector
  /// construction before the first session).
  [[nodiscard]] double now_us() const;

  /// Small dense id for the calling thread (0, 1, 2, ... in first-use
  /// order) — the merged trace's host-thread track index.
  [[nodiscard]] static std::uint32_t thread_track();

 private:
  std::atomic<bool> enabled_{false};
  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
  std::chrono::steady_clock::time_point epoch_;
};

/// RAII scope marker. Records into TraceCollector::global() (the only
/// collector the macros use; pass another explicitly for tests).
class Span {
 public:
  explicit Span(std::string name,
                TraceCollector& collector = TraceCollector::global());
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Open-span nesting depth of the calling thread (0 = no span open).
  [[nodiscard]] static int current_depth();

 private:
  TraceCollector& collector_;
  std::string name_;
  double start_us_ = 0.0;
  int depth_ = 0;
  std::uint64_t trace_id_ = 0;
  bool active_ = false;
};

}  // namespace snp::obs
