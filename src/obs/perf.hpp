// snp::obs — derived performance counters and roofline-style efficiency
// accounting.
//
// Raw telemetry (bytes moved, word-ops executed, seconds elapsed) becomes
// meaningful only as rates against a model: the paper's figures all plot
// achieved GOPS next to a predicted bound. This header holds the pure
// arithmetic for that step — phase rates (GB/s, Gword-ops/s) and the
// achieved-vs-attainable efficiency line every instrumented run prints.
// It is deliberately model-agnostic: callers (core/cli) feed in the
// attainable and peak numbers from src/model + sim::roofline_for; obs
// itself stays dependency-free.
#pragma once

#include <string>

namespace snp::obs {

/// One pipeline phase's raw accounting, as accumulated by the counters.
struct PhasePerf {
  std::string phase;     ///< e.g. "h2d", "kernel", "pack"
  double seconds = 0.0;  ///< busy time attributed to the phase
  double bytes = 0.0;    ///< bytes moved (0 for pure-compute phases)
  double wordops = 0.0;  ///< 32-bit word-ops executed (0 for transfers)

  /// Effective GB/s (1e9 bytes per second); 0 when seconds or bytes is 0.
  [[nodiscard]] double gbps() const {
    return seconds > 0.0 ? bytes / seconds / 1e9 : 0.0;
  }
  /// Effective Gword-ops/s; 0 when seconds or wordops is 0.
  [[nodiscard]] double gops() const {
    return seconds > 0.0 ? wordops / seconds / 1e9 : 0.0;
  }
  /// "h2d: 1.234 GB/s (0.56 s, 0.69 GB)"-style summary.
  [[nodiscard]] std::string to_line() const;
};

/// Achieved-vs-model comparison for one run, in Gword-ops/s. `attainable`
/// is the roofline bound min(peak, intensity x bandwidth) from
/// sim::roofline_for; `peak` the pipe-bottleneck FU peak.
struct EfficiencySummary {
  double achieved_gops = 0.0;
  double attainable_gops = 0.0;
  double peak_gops = 0.0;
  bool memory_bound = false;

  /// achieved / attainable, in percent (0 when no attainable bound).
  [[nodiscard]] double efficiency_pct() const {
    return attainable_gops > 0.0 ? achieved_gops / attainable_gops * 100.0
                                 : 0.0;
  }
  /// The line printed after every instrumented run, e.g.
  /// "achieved 123.4 of 180.0 attainable Gword-ops/s (68.6% of roofline,
  ///  compute-bound; FU peak 250.0)".
  [[nodiscard]] std::string to_line() const;
};

}  // namespace snp::obs
