// snp::obs — execution-environment capture for measurement provenance.
//
// A benchmark number without its environment is not reproducible: the
// CPU model, core count, frequency governor, compiler, and source
// revision all move the result. This module captures that header once
// per run; tools/run_bench.sh embeds it in the aggregated BENCH_*.json
// and write_metrics_json attaches it to every metrics snapshot, so any
// two documents fed to tools/bench_compare carry enough context to judge
// whether a delta is a code change or a machine change.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>

namespace snp::obs {

struct EnvInfo {
  std::string cpu_model;    ///< /proc/cpuinfo "model name" (or "unknown")
  int logical_cores = 0;    ///< std::thread::hardware_concurrency
  std::string governor;     ///< cpu0 scaling_governor ("unknown" if none)
  std::string compiler;     ///< compiler id + __VERSION__
  std::string git_sha;      ///< $SNPCMP_GIT_SHA, else `git rev-parse`
  std::string hostname;
  std::string kernel;       ///< uname sysname + release
};

/// Gathers everything above. Never throws; fields degrade to "unknown"
/// (or 0) when a source is unavailable, e.g. in containers.
[[nodiscard]] EnvInfo collect_env_info();

/// `{"cpu_model": "...", "logical_cores": N, ...}` — one flat object.
void write_env_json(const EnvInfo& env, std::ostream& os);

/// Minimal JSON string escaping (backslash, quote, control chars) shared
/// by every JSON emitter that handles uncontrolled strings.
[[nodiscard]] std::string json_escape(std::string_view s);

}  // namespace snp::obs
