#include "obs/report.hpp"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <limits>
#include <map>
#include <ostream>
#include <stdexcept>

namespace snp::obs::jsonlite {

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value parse_document() {
    Value v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) {
      fail("trailing garbage after document");
    }
    return v;
  }

 private:
  [[noreturn]] void fail(const char* what) const {
    throw std::runtime_error("jsonlite: " + std::string(what) +
                             " at byte " + std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') {
        break;
      }
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) {
      fail("unexpected end of input");
    }
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) {
      fail("unexpected character");
    }
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) {
      return false;
    }
    pos_ += lit.size();
    return true;
  }

  Value parse_value() {
    skip_ws();
    switch (peek()) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"': {
        Value v;
        v.kind = Value::Kind::kString;
        v.text = parse_string();
        return v;
      }
      case 't': {
        if (!consume_literal("true")) {
          fail("bad literal");
        }
        Value v;
        v.kind = Value::Kind::kBool;
        v.boolean = true;
        return v;
      }
      case 'f': {
        if (!consume_literal("false")) {
          fail("bad literal");
        }
        Value v;
        v.kind = Value::Kind::kBool;
        v.boolean = false;
        return v;
      }
      case 'n': {
        if (!consume_literal("null")) {
          fail("bad literal");
        }
        return Value{};
      }
      default:
        return parse_number();
    }
  }

  Value parse_object() {
    expect('{');
    Value v;
    v.kind = Value::Kind::kObject;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.members.emplace_back(std::move(key), parse_value());
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == '}') {
        ++pos_;
        return v;
      }
      fail("expected ',' or '}'");
    }
  }

  Value parse_array() {
    expect('[');
    Value v;
    v.kind = Value::Kind::kArray;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.items.push_back(parse_value());
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == ']') {
        ++pos_;
        return v;
      }
      fail("expected ',' or ']'");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) {
        fail("unterminated string");
      }
      const char c = text_[pos_++];
      if (c == '"') {
        return out;
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) {
        fail("unterminated escape");
      }
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
        case '\\':
        case '/':
          out += esc;
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'n':
          out += '\n';
          break;
        case 'r':
          out += '\r';
          break;
        case 't':
          out += '\t';
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            fail("truncated \\u escape");
          }
          unsigned cp = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            cp <<= 4U;
            if (h >= '0' && h <= '9') {
              cp |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              cp |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              cp |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("bad hex digit in \\u escape");
            }
          }
          // UTF-8 encode (BMP only; surrogate pairs are not produced by
          // our own writers and decode as two replacement sequences).
          if (cp < 0x80) {
            out += static_cast<char>(cp);
          } else if (cp < 0x800) {
            out += static_cast<char>(0xC0 | (cp >> 6U));
            out += static_cast<char>(0x80 | (cp & 0x3FU));
          } else {
            out += static_cast<char>(0xE0 | (cp >> 12U));
            out += static_cast<char>(0x80 | ((cp >> 6U) & 0x3FU));
            out += static_cast<char>(0x80 | (cp & 0x3FU));
          }
          break;
        }
        default:
          fail("bad escape");
      }
    }
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') {
      ++pos_;
    }
    auto digits = [&] {
      bool any = false;
      while (pos_ < text_.size() && text_[pos_] >= '0' &&
             text_[pos_] <= '9') {
        ++pos_;
        any = true;
      }
      return any;
    };
    if (!digits()) {
      fail("expected number");
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (!digits()) {
        fail("expected fraction digits");
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() &&
          (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (!digits()) {
        fail("expected exponent digits");
      }
    }
    Value v;
    v.kind = Value::Kind::kNumber;
    v.text = std::string(text_.substr(start, pos_ - start));
    v.number = std::strtod(v.text.c_str(), nullptr);
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

const Value* Value::find(std::string_view key) const {
  if (kind != Kind::kObject) {
    return nullptr;
  }
  for (const auto& [k, v] : members) {
    if (k == key) {
      return &v;
    }
  }
  return nullptr;
}

double Value::num_or(std::string_view key, double fallback) const {
  const Value* v = find(key);
  return (v != nullptr && v->is_number()) ? v->number : fallback;
}

std::uint64_t Value::u64_or(std::string_view key,
                            std::uint64_t fallback) const {
  const Value* v = find(key);
  if (v == nullptr || !v->is_number()) {
    return fallback;
  }
  std::uint64_t out = 0;
  const char* begin = v->text.data();
  const char* end = begin + v->text.size();
  const auto [ptr, ec] = std::from_chars(begin, end, out);
  if (ec != std::errc{} || ptr != end) {
    // Fractional or negative token: round through the double.
    const double d = v->number;
    return d > 0.0 ? static_cast<std::uint64_t>(d + 0.5) : fallback;
  }
  return out;
}

std::string_view Value::str_or(std::string_view key,
                               std::string_view fallback) const {
  const Value* v = find(key);
  return (v != nullptr && v->is_string()) ? std::string_view(v->text)
                                          : fallback;
}

Value parse(std::string_view text) {
  return Parser(text).parse_document();
}

}  // namespace snp::obs::jsonlite

namespace snp::obs {

namespace {

using jsonlite::Value;

/// Honest bucket-resolution percentile over a parsed histogram view
/// (mirrors MetricsSnapshot::HistogramView::percentile_le).
double percentile_le(const std::vector<double>& bounds,
                     const std::vector<std::uint64_t>& counts,
                     std::uint64_t count, double q) {
  if (count == 0) {
    return 0.0;
  }
  const auto rank = static_cast<std::uint64_t>(
      std::max(1.0, std::ceil(q * static_cast<double>(count))));
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < bounds.size() && i < counts.size(); ++i) {
    cumulative += counts[i];
    if (cumulative >= rank) {
      return bounds[i];
    }
  }
  return std::numeric_limits<double>::infinity();
}

struct HistogramDoc {
  bool present = false;
  std::uint64_t count = 0;
  double sum = 0.0;
  std::vector<double> bounds;
  std::vector<std::uint64_t> counts;
};

HistogramDoc read_histogram(const Value& metrics, std::string_view name) {
  HistogramDoc h;
  const Value* hists = metrics.find("histograms");
  if (hists == nullptr) {
    return h;
  }
  const Value* doc = hists->find(name);
  if (doc == nullptr || !doc->is_object()) {
    return h;
  }
  h.present = true;
  h.count = doc->u64_or("count", 0);
  h.sum = doc->num_or("sum", 0.0);
  if (const Value* b = doc->find("bounds");
      b != nullptr && b->is_array()) {
    for (const Value& x : b->items) {
      h.bounds.push_back(x.number);
    }
  }
  if (const Value* c = doc->find("counts");
      c != nullptr && c->is_array()) {
    for (const Value& x : c->items) {
      h.counts.push_back(static_cast<std::uint64_t>(x.number));
    }
  }
  return h;
}

std::uint64_t read_counter(const Value& metrics, std::string_view name) {
  const Value* counters = metrics.find("counters");
  return counters != nullptr ? counters->u64_or(name, 0) : 0;
}

bool read_gauge(const Value& metrics, std::string_view name,
                std::int64_t* out) {
  const Value* gauges = metrics.find("gauges");
  if (gauges == nullptr) {
    return false;
  }
  const Value* v = gauges->find(name);
  if (v == nullptr || !v->is_number()) {
    return false;
  }
  *out = static_cast<std::int64_t>(v->number);
  return true;
}

/// snprintf-based number rendering: locale-independent, deterministic.
std::string fmt(const char* format, double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, format, v);
  return buf;
}

std::string fmt_pct(double ratio) { return fmt("%.1f%%", ratio * 100.0); }

std::string fmt_us(double us) {
  if (us >= 1e6) {
    return fmt("%.3f s", us / 1e6);
  }
  if (us >= 1e3) {
    return fmt("%.3f ms", us / 1e3);
  }
  return fmt("%.1f us", us);
}

std::string fmt_s(double seconds) { return fmt_us(seconds * 1e6); }

}  // namespace

PipelineReport analyze_pipeline(const Value& trace, const Value& metrics,
                                const Value* cost,
                                const ReportOptions& opts) {
  if (!trace.is_array()) {
    throw std::runtime_error("report: trace document is not an array");
  }
  if (!metrics.is_object()) {
    throw std::runtime_error("report: metrics document is not an object");
  }
  PipelineReport rep;

  // ---- trace pass: track labels, per-track busy time, span ----
  struct TrackAccum {
    std::string name;
    double busy_us = 0.0;
    std::uint64_t slices = 0;
  };
  std::map<std::pair<std::uint32_t, std::uint32_t>, TrackAccum> tracks;
  double min_ts = std::numeric_limits<double>::infinity();
  double max_end = -std::numeric_limits<double>::infinity();
  double dev_min_ts = std::numeric_limits<double>::infinity();
  double dev_max_end = -std::numeric_limits<double>::infinity();

  for (const Value& ev : trace.items) {
    if (!ev.is_object()) {
      continue;
    }
    ++rep.trace_events;
    const std::string_view ph = ev.str_or("ph", "");
    const auto pid = static_cast<std::uint32_t>(ev.num_or("pid", 0.0));
    const auto tid = static_cast<std::uint32_t>(ev.num_or("tid", 0.0));
    if (ph == "M") {
      if (ev.str_or("name", "") == "thread_name") {
        if (const Value* args = ev.find("args"); args != nullptr) {
          tracks[{pid, tid}].name = args->str_or("name", "");
        }
      }
      continue;
    }
    if (ph != "X") {
      continue;  // instants and flow records carry no busy time
    }
    const double ts = ev.num_or("ts", 0.0);
    const double dur = ev.num_or("dur", 0.0);
    TrackAccum& acc = tracks[{pid, tid}];
    acc.busy_us += dur;
    ++acc.slices;
    min_ts = std::min(min_ts, ts);
    max_end = std::max(max_end, ts + dur);
    if (pid == 0) {
      dev_min_ts = std::min(dev_min_ts, ts);
      dev_max_end = std::max(dev_max_end, ts + dur);
    }
  }
  if (max_end > min_ts) {
    rep.span_us = max_end - min_ts;
  }

  double dev_serial = 0.0;
  double dev_ideal = 0.0;
  for (const auto& [key, acc] : tracks) {
    if (acc.slices == 0) {
      continue;  // label-only track (no slices this run)
    }
    TrackUtilization t;
    t.pid = key.first;
    t.tid = key.second;
    t.name = acc.name.empty() ? "pid" + std::to_string(key.first) +
                                    "/tid" + std::to_string(key.second)
                              : acc.name;
    t.busy_us = acc.busy_us;
    t.slices = acc.slices;
    t.utilization = rep.span_us > 0.0 ? acc.busy_us / rep.span_us : 0.0;
    if (key.first == 0) {
      rep.has_device_tracks = true;
      dev_serial += acc.busy_us;
      dev_ideal = std::max(dev_ideal, acc.busy_us);
    }
    rep.tracks.push_back(std::move(t));
  }
  if (rep.has_device_tracks) {
    rep.device_serial_us = dev_serial;
    rep.device_ideal_us = dev_ideal;
    rep.device_makespan_us = std::max(0.0, dev_max_end - dev_min_ts);
    const double hideable = dev_serial - dev_ideal;
    if (hideable > 0.0) {
      const double hidden = dev_serial - rep.device_makespan_us;
      rep.overlap_efficiency = std::clamp(hidden / hideable, 0.0, 1.0);
    } else {
      rep.overlap_efficiency = 1.0;  // single engine: nothing to hide
    }
  }

  // ---- metrics pass: coalescing, queue decomposition, Little's ----
  rep.batches = read_counter(metrics, "svc.batches");
  rep.batched_rows = read_counter(metrics, "svc.batch.rows");
  if (rep.batches > 0) {
    rep.mean_batch_rows = static_cast<double>(rep.batched_rows) /
                          static_cast<double>(rep.batches);
  }
  if (read_gauge(metrics, "svc.config.max_batch_rows",
                 &rep.max_batch_rows) &&
      rep.max_batch_rows > 0 && rep.batches > 0) {
    rep.coalescing_efficiency =
        rep.mean_batch_rows / static_cast<double>(rep.max_batch_rows);
  }

  const HistogramDoc wait =
      read_histogram(metrics, "svc.queue.wait_seconds");
  const HistogramDoc service =
      read_histogram(metrics, "svc.service.time_seconds");
  rep.wait_count = wait.count;
  if (wait.count > 0) {
    rep.mean_wait_s = wait.sum / static_cast<double>(wait.count);
    rep.p99_wait_le_s =
        percentile_le(wait.bounds, wait.counts, wait.count, 0.99);
  }
  if (service.count > 0) {
    rep.mean_service_s = service.sum / static_cast<double>(service.count);
    rep.p99_service_le_s = percentile_le(service.bounds, service.counts,
                                         service.count, 0.99);
  }
  const double latency = rep.mean_wait_s + rep.mean_service_s;
  rep.wait_share = latency > 0.0 ? rep.mean_wait_s / latency : 0.0;

  LittlesCheck& lc = rep.littles;
  lc.tolerance = opts.littles_tolerance;
  std::int64_t depth_us = 0;
  if (wait.present &&
      read_gauge(metrics, "svc.queue.depth_time_us", &depth_us)) {
    lc.evaluated = true;
    lc.wait_sum_s = wait.sum;
    lc.depth_integral_s = static_cast<double>(depth_us) * 1e-6;
    const double hi = std::max(lc.wait_sum_s, lc.depth_integral_s);
    if (hi <= 1e-6) {
      // Idle service: both integrals ~0; the identity holds trivially.
      lc.rel_error = 0.0;
      lc.pass = true;
    } else {
      lc.rel_error = std::abs(lc.wait_sum_s - lc.depth_integral_s) / hi;
      lc.pass = lc.rel_error <= lc.tolerance;
    }
    const double span_s = rep.span_us * 1e-6;
    if (span_s > 0.0) {
      lc.lambda_per_s = static_cast<double>(wait.count) / span_s;
      lc.mean_depth = lc.depth_integral_s / span_s;
    }
    lc.mean_wait_s = rep.mean_wait_s;
  }

  // ---- cost-ledger pass: top-N by attributed device time ----
  if (cost != nullptr && cost->is_object()) {
    rep.has_cost = true;
    rep.cost_dropped = cost->u64_or("dropped_requests", 0);
    if (const Value* reqs = cost->find("requests");
        reqs != nullptr && reqs->is_array()) {
      rep.cost_requests = reqs->items.size();
      std::vector<ExpensiveRequest> all;
      all.reserve(reqs->items.size());
      for (const Value& r : reqs->items) {
        if (!r.is_object()) {
          continue;
        }
        ExpensiveRequest e;
        e.trace_id = r.u64_or("trace", 0);
        e.batch_id = r.u64_or("batch", 0);
        e.device_ns = r.u64_or("device_ns", 0);
        e.h2d_ns = r.u64_or("h2d_ns", 0);
        e.d2h_ns = r.u64_or("d2h_ns", 0);
        e.h2d_bytes = r.u64_or("h2d_bytes", 0);
        e.d2h_bytes = r.u64_or("d2h_bytes", 0);
        e.wordops = r.u64_or("wordops", 0);
        e.retries = static_cast<std::uint32_t>(r.u64_or("retries", 0));
        e.failovers =
            static_cast<std::uint32_t>(r.u64_or("failovers", 0));
        if (const Value* ch = r.find("cache_hit"); ch != nullptr) {
          e.cache_hit = ch->boolean;
        }
        if (const Value* dg = r.find("degraded"); dg != nullptr) {
          e.degraded = dg->boolean;
        }
        all.push_back(e);
      }
      // Rank by total attributed device-side time; trace id breaks ties
      // so the report is byte-stable across runs of the same ledger.
      std::stable_sort(all.begin(), all.end(),
                       [](const ExpensiveRequest& a,
                          const ExpensiveRequest& b) {
                         const std::uint64_t ta =
                             a.device_ns + a.h2d_ns + a.d2h_ns;
                         const std::uint64_t tb =
                             b.device_ns + b.h2d_ns + b.d2h_ns;
                         if (ta != tb) {
                           return ta > tb;
                         }
                         return a.trace_id < b.trace_id;
                       });
      if (all.size() > opts.top_n) {
        all.resize(opts.top_n);
      }
      rep.top_requests = std::move(all);
    }
  }
  return rep;
}

void write_pipeline_report(const PipelineReport& rep, std::ostream& os) {
  os << "pipeline report:\n";
  os << "  trace: " << rep.trace_events << " events, span "
     << fmt_us(rep.span_us) << "\n";

  os << "  stage utilization:\n";
  if (rep.tracks.empty()) {
    os << "    (no slices in trace)\n";
  }
  for (const TrackUtilization& t : rep.tracks) {
    char head[64];
    std::snprintf(head, sizeof head, "    [pid %u/tid %u] ", t.pid,
                  t.tid);
    os << head << t.name << ": busy " << fmt_us(t.busy_us) << ", util "
       << fmt_pct(t.utilization) << ", slices " << t.slices << "\n";
  }

  if (rep.has_device_tracks) {
    os << "  overlap: device serial " << fmt_us(rep.device_serial_us)
       << ", makespan " << fmt_us(rep.device_makespan_us) << ", ideal "
       << fmt_us(rep.device_ideal_us) << " -> efficiency "
       << fmt_pct(rep.overlap_efficiency) << "\n";
  } else {
    os << "  overlap: n/a (no device tracks; cpu run)\n";
  }

  if (rep.batches > 0) {
    os << "  coalescing: " << rep.batched_rows << " rows / "
       << rep.batches << " batches = mean width "
       << fmt("%.2f", rep.mean_batch_rows);
    if (rep.max_batch_rows > 0) {
      os << " (max " << rep.max_batch_rows << ") -> efficiency "
         << fmt_pct(rep.coalescing_efficiency);
    }
    os << "\n";
  } else {
    os << "  coalescing: n/a (no svc batches in metrics)\n";
  }

  if (rep.wait_count > 0) {
    os << "  queue: " << rep.wait_count << " requests, mean wait "
       << fmt_s(rep.mean_wait_s) << " (p99<=" << fmt_s(rep.p99_wait_le_s)
       << "), mean service " << fmt_s(rep.mean_service_s) << " (p99<="
       << fmt_s(rep.p99_service_le_s) << "), wait share "
       << fmt_pct(rep.wait_share) << "\n";
  } else {
    os << "  queue: n/a (no svc.queue.wait_seconds histogram)\n";
  }

  const LittlesCheck& lc = rep.littles;
  if (lc.evaluated) {
    os << "  littles law: sum(wait) " << fmt("%.6f s", lc.wait_sum_s)
       << " vs depth integral " << fmt("%.6f s", lc.depth_integral_s)
       << ", rel err " << fmt_pct(lc.rel_error) << " -> "
       << (lc.pass ? "PASS" : "FAIL") << " (tol "
       << fmt_pct(lc.tolerance) << ")";
    if (lc.lambda_per_s > 0.0) {
      os << " [lambda " << fmt("%.1f", lc.lambda_per_s) << "/s, W "
         << fmt_s(lc.mean_wait_s) << ", mean depth "
         << fmt("%.3f", lc.mean_depth) << "]";
    }
    os << "\n";
  } else {
    os << "  littles law: n/a (needs svc.queue.wait_seconds histogram "
          "and svc.queue.depth_time_us gauge)\n";
  }

  if (rep.has_cost) {
    os << "  cost ledger: " << rep.cost_requests << " requests";
    if (rep.cost_dropped > 0) {
      os << " (" << rep.cost_dropped << " dropped)";
    }
    os << "\n";
    os << "  top requests by device time:\n";
    if (rep.top_requests.empty()) {
      os << "    (none)\n";
    }
    std::size_t rank = 1;
    for (const ExpensiveRequest& e : rep.top_requests) {
      os << "    " << rank++ << ". trace " << e.trace_id << " batch "
         << e.batch_id << ": device " << e.device_ns << " ns, h2d "
         << e.h2d_ns << " ns/" << e.h2d_bytes << " B, d2h " << e.d2h_ns
         << " ns/" << e.d2h_bytes << " B, wordops " << e.wordops;
      if (e.retries > 0) {
        os << ", retries " << e.retries;
      }
      if (e.failovers > 0) {
        os << ", failovers " << e.failovers;
      }
      if (e.degraded) {
        os << ", degraded";
      }
      if (e.cache_hit) {
        os << ", cache hit";
      }
      os << "\n";
    }
  }
}

}  // namespace snp::obs
