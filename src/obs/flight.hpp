// snp::obs — always-on flight recorder.
//
// A crash-diagnosis black box: every thread that records events owns a
// lock-free ring of compact fixed-size records (enqueue / batch / chunk
// / fault / retry / cache hit / ...), so the last few thousand events
// per thread are always available for dumping when something goes wrong
// — an exit-4 fault path, an SLO burn-rate breach, or an explicit
// `snpcmp serve --flight-out` request.
//
// Cost model: one append is an enabled-flag load, a thread-local ring
// lookup, one clock read, and six relaxed atomic stores bracketed by a
// per-slot seqlock — tens of nanoseconds, cheap enough to leave on in
// production serving paths. The SNP_OBS_FLIGHT macro call sites compile
// away entirely under SNPCMP_OBS=OFF; set_enabled(false) is the runtime
// kill switch (used by bench/abl_obs_overhead to price the residual).
//
// Concurrency: each ring has exactly one writer (its owning thread);
// dumpers read concurrently through per-slot sequence counters — a slot
// whose sequence is odd or changes across the read is being overwritten
// and is skipped. All shared words are relaxed atomics, so the protocol
// is race-free under TSan by construction, and a dump taken mid-write
// yields only whole records.
//
// Determinism: under a seeded rt::ScopedFaultPlan the recorded event
// *sequence* (kinds, trace ids, codes, payloads, per-thread order) is
// deterministic; only timestamps vary run to run. Golden tests assert
// on the sequence and schema, never on ts.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace snp::obs {

/// Compact event kinds. Stable names (to_string) appear in dumps; add
/// new kinds at the end so recorded numeric values keep meaning.
enum class FlightKind : std::uint8_t {
  kEnqueue = 1,   ///< request queued          a=queue depth   b=rows
  kCacheHit = 2,  ///< served from result cache a=epoch
  kShed = 3,      ///< rejected by admission    a=queue depth
  kBatch = 4,     ///< batch formed             a=batch id      b=width
  kChunkPack = 5, ///< chunk pack stage done    a=chunk index   b=rows
  kChunkExec = 6, ///< chunk execute stage done a=chunk index   b=rows
  kChunkDrain = 7,///< chunk drain stage done   a=chunk index   b=rows
  kFault = 8,     ///< non-retryable/final fault code=SNPRT a=chunk b=attempt
  kRetry = 9,     ///< retryable fault, retrying code=SNPRT a=chunk b=attempt
  kResolve = 10,  ///< request future resolved  a=batch id      b=latency_us
  kEpoch = 11,    ///< database epoch bump      a=new epoch     b=rows
  kSloBreach = 12,///< burn-rate trigger tripped a=breaches     b=total
  kDeadlineShed = 13,  ///< expired before launch a=queue depth  b=remaining_us
  kBreaker = 14,  ///< breaker transition       code=new state
  kBrownout = 15, ///< brown-out edge           a=1 enter/0 exit b=shed class
};

[[nodiscard]] const char* to_string(FlightKind kind);

/// One decoded flight record (the in-ring representation is five u64
/// words plus a sequence counter; see FlightRecorder::record).
struct FlightRecord {
  double ts_us = 0.0;          ///< since recorder epoch
  std::uint32_t thread = 0;    ///< dense recording-thread index
  FlightKind kind{};
  std::uint32_t code = 0;      ///< rt error code for fault/retry, else 0
  std::uint64_t trace_id = 0;  ///< originating request (0 = none)
  std::int64_t a = 0;          ///< kind-specific payload
  std::int64_t b = 0;          ///< kind-specific payload
};

/// Process-wide flight recorder (tests may build standalone instances;
/// a recorder must outlive every thread that records into it).
class FlightRecorder {
 public:
  /// Default per-thread ring capacity (records). Overridable at first
  /// use via SNPCMP_FLIGHT_RING (rounded up to a power of two); at 48
  /// bytes per slot the default ring is ~96 KiB per recording thread.
  /// An unparsable or out-of-range value falls back to this default
  /// with a one-line stderr warning (see parse_flight_ring).
  static constexpr std::size_t kDefaultCapacity = 2048;
  /// Largest capacity SNPCMP_FLIGHT_RING may request (per thread; 16M
  /// slots = 768 MiB/thread — past any plausible diagnostic need, and a
  /// guard against a byte count pasted where a record count goes).
  static constexpr std::size_t kMaxCapacity = 1ULL << 24U;

  [[nodiscard]] static FlightRecorder& global();
  FlightRecorder();
  explicit FlightRecorder(std::size_t capacity);
  ~FlightRecorder();
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Runtime kill switch (the compile-time one is SNPCMP_OBS=OFF).
  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }
  [[nodiscard]] bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Appends one record to the calling thread's ring (registering the
  /// ring on first use). Dropped while disabled.
  void record(FlightKind kind, std::uint64_t trace_id, std::uint32_t code,
              std::int64_t a, std::int64_t b);

  /// Consistent snapshot of every thread's ring, merged and sorted by
  /// timestamp. Safe to call while writers are appending: torn slots
  /// are skipped, whole records are never mixed.
  [[nodiscard]] std::vector<FlightRecord> snapshot() const;

  /// Total records overwritten before they could be snapshot (sum of
  /// per-ring wraparound losses).
  [[nodiscard]] std::uint64_t dropped() const;

  /// Optional resolver mapping fault/retry `code` values to stable
  /// names ("SNPRT-LAUNCH"); installed by the rt layer so dumps name
  /// codes without obs depending on rt. Dumps print the raw number
  /// when no namer is installed.
  using CodeNamer = std::string_view (*)(std::uint32_t);
  void set_code_namer(CodeNamer namer);

  /// Dump destination for the automatic paths (exit-4 faults, SLO
  /// breaches). Empty = not configured.
  void set_dump_path(std::string path);
  [[nodiscard]] std::string dump_path() const;

  /// Writes the dump document {"flight":1,"reason":...,"events":[...]}.
  void dump_json(std::ostream& os, std::string_view reason) const;
  /// dump_json to `path`; returns false if the file cannot be opened.
  bool dump_to_file(const std::string& path, std::string_view reason) const;
  /// Automatic-dump entry point: writes to the configured dump path
  /// (falling back to $SNPCMP_FLIGHT_OUT) and returns the path written,
  /// or "" when no destination is configured or the write failed.
  std::string auto_dump(std::string_view reason) const;

  /// Drops all recorded events (tests). Rings stay registered.
  void clear();

  [[nodiscard]] std::size_t capacity() const { return capacity_; }

 private:
  struct Ring;
  Ring* ring_for_this_thread();

  std::atomic<bool> enabled_{true};
  /// Never-reused instance id; keys the per-thread ring cache so a
  /// recorder allocated at a destroyed one's address cannot alias it.
  const std::uint64_t id_;
  std::size_t capacity_;
  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Ring>> rings_;
  std::atomic<CodeNamer> namer_{nullptr};
  std::string dump_path_;
};

/// Strict SNPCMP_FLIGHT_RING parser: accepts a base-10 record count in
/// [16, FlightRecorder::kMaxCapacity] with optional surrounding
/// whitespace, and returns it rounded up to a power of two. Everything
/// else — empty/blank text, non-digits, trailing garbage ("4096x",
/// "1e4"), signs, out-of-range or overflowing values — returns nullopt,
/// which the recorder maps to kDefaultCapacity plus a one-line stderr
/// warning (never a throw: a bad env var must not take down a serving
/// process at first record()).
[[nodiscard]] std::optional<std::size_t> parse_flight_ring(
    std::string_view text);

}  // namespace snp::obs
