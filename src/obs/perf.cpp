#include "obs/perf.hpp"

#include <cstdio>

namespace snp::obs {

std::string PhasePerf::to_line() const {
  char buf[160];
  if (wordops > 0.0) {
    std::snprintf(buf, sizeof buf, "%s: %.2f Gword-ops/s (%.3g s, %.3g Gops)",
                  phase.c_str(), gops(), seconds, wordops / 1e9);
  } else {
    std::snprintf(buf, sizeof buf, "%s: %.2f GB/s (%.3g s, %.3g GB)",
                  phase.c_str(), gbps(), seconds, bytes / 1e9);
  }
  return buf;
}

std::string EfficiencySummary::to_line() const {
  char buf[200];
  std::snprintf(buf, sizeof buf,
                "achieved %.1f of %.1f attainable Gword-ops/s (%.1f%% of "
                "roofline, %s; FU peak %.1f)",
                achieved_gops, attainable_gops, efficiency_pct(),
                memory_bound ? "memory-bound" : "compute-bound", peak_gops);
  return buf;
}

}  // namespace snp::obs
