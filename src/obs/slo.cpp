#include "obs/slo.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "obs/metrics.hpp"

namespace snp::obs {

SloMonitor::SloMonitor(SloOptions options)
    : options_(options), bounds_(Histogram::service_latency_bounds()),
      bucket_width_s_(std::max(options.fast_window_s / 10.0, 1e-3)),
      hist_counts_(bounds_.size() + 1, 0),
      hist_exemplars_(bounds_.size() + 1),
      epoch_(std::chrono::steady_clock::now()) {}

bool SloMonitor::record(double latency_s, std::uint64_t trace_id) {
  const double now_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    epoch_)
          .count();
  const std::lock_guard lock(mu_);

  const auto it =
      std::lower_bound(bounds_.begin(), bounds_.end(), latency_s);
  const auto bucket = static_cast<std::size_t>(it - bounds_.begin());
  ++hist_counts_[bucket];
  hist_exemplars_[bucket] = SloExemplar{latency_s, trace_id};
  ++total_;

  if (options_.objective_s <= 0.0) {
    return false;
  }
  const bool breach = latency_s > options_.objective_s;
  breaches_ += breach ? 1 : 0;

  const auto index = static_cast<std::int64_t>(now_s / bucket_width_s_);
  if (window_.empty() || window_.back().index != index) {
    window_.push_back(Bucket{index, 0, 0});
  }
  ++window_.back().total;
  window_.back().breaches += breach ? 1 : 0;
  prune_locked(now_s);

  const double fast = burn_rate_locked(now_s, options_.fast_window_s);
  const double slow = burn_rate_locked(now_s, options_.slow_window_s);
  const bool over = fast >= options_.breach_burn_rate &&
                    slow >= options_.breach_burn_rate;
  if (over && armed_) {
    armed_ = false;
    ++trips_;
    return true;
  }
  if (!over) {
    armed_ = true;
  }
  return false;
}

double SloMonitor::burn_rate_locked(double now_s, double window_s) const {
  const auto first =
      static_cast<std::int64_t>((now_s - window_s) / bucket_width_s_);
  std::uint64_t total = 0;
  std::uint64_t breaches = 0;
  for (const Bucket& b : window_) {
    if (b.index >= first) {
      total += b.total;
      breaches += b.breaches;
    }
  }
  if (total == 0) {
    return 0.0;
  }
  const double fraction =
      static_cast<double>(breaches) / static_cast<double>(total);
  return fraction / options_.error_budget;
}

void SloMonitor::prune_locked(double now_s) {
  const auto first = static_cast<std::int64_t>(
      (now_s - options_.slow_window_s) / bucket_width_s_);
  while (!window_.empty() && window_.front().index < first) {
    window_.pop_front();
  }
}

SloSnapshot SloMonitor::snapshot() const {
  const double now_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    epoch_)
          .count();
  const std::lock_guard lock(mu_);
  SloSnapshot snap;
  snap.total = total_;
  snap.breaches = breaches_;
  snap.burn_fast = burn_rate_locked(now_s, options_.fast_window_s);
  snap.burn_slow = burn_rate_locked(now_s, options_.slow_window_s);
  snap.trips = trips_;
  return snap;
}

std::vector<std::uint64_t> SloMonitor::bucket_counts() const {
  const std::lock_guard lock(mu_);
  return hist_counts_;
}

std::vector<std::optional<SloExemplar>> SloMonitor::exemplars() const {
  const std::lock_guard lock(mu_);
  return hist_exemplars_;
}

double SloMonitor::percentile_le(double q) const {
  const std::lock_guard lock(mu_);
  if (total_ == 0) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  const auto rank = static_cast<std::uint64_t>(
      std::max(1.0, std::ceil(q * static_cast<double>(total_))));
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < bounds_.size(); ++i) {
    cumulative += hist_counts_[i];
    if (cumulative >= rank) {
      return bounds_[i];
    }
  }
  return std::numeric_limits<double>::infinity();
}

}  // namespace snp::obs
