// Genotype-to-bit encoding (paper Section III, Fig. 2).
//
// Raw genotypes are minor-allele dosages in {0, 1, 2} (diploid). The paper's
// pipeline encodes "presence of the minor allele" as a 1 bit and the major
// allele as a 0 bit; padding rows/columns are zero. We additionally support
// the homozygous-minor plane, which downstream LD statistics can combine
// with the presence plane.
#pragma once

#include <cstdint>
#include <vector>

#include "bits/bitmatrix.hpp"

namespace snp::bits {

/// Dense dosage matrix: rows = SNP loci, cols = samples, values in {0,1,2}.
class GenotypeMatrix {
 public:
  GenotypeMatrix() = default;
  GenotypeMatrix(std::size_t loci, std::size_t samples)
      : loci_(loci), samples_(samples), dosage_(loci * samples, 0) {}

  [[nodiscard]] std::size_t loci() const { return loci_; }
  [[nodiscard]] std::size_t samples() const { return samples_; }
  [[nodiscard]] std::uint8_t& at(std::size_t locus, std::size_t sample) {
    return dosage_[locus * samples_ + sample];
  }
  [[nodiscard]] std::uint8_t at(std::size_t locus, std::size_t sample) const {
    return dosage_[locus * samples_ + sample];
  }

  /// Minor-allele frequency of a locus (mean dosage / 2).
  [[nodiscard]] double maf(std::size_t locus) const;

 private:
  std::size_t loci_ = 0;
  std::size_t samples_ = 0;
  std::vector<std::uint8_t> dosage_;
};

enum class EncodingPlane {
  /// Bit = 1 iff at least one minor allele is present (dosage >= 1).
  kPresence,
  /// Bit = 1 iff homozygous for the minor allele (dosage == 2).
  kHomozygous,
};

/// Packs one plane of a genotype matrix into a BitMatrix (one row per locus,
/// one bit column per sample), padded with zero bits.
[[nodiscard]] BitMatrix encode(const GenotypeMatrix& g, EncodingPlane plane,
                               std::size_t stride_words64 = 1);

}  // namespace snp::bits
