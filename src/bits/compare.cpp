#include "bits/compare.hpp"

#include <stdexcept>

namespace snp::bits {

namespace {

void check_conformance(const BitMatrix& a, const BitMatrix& b) {
  if (a.bit_cols() != b.bit_cols()) {
    throw std::invalid_argument(
        "compare: operands must share the K (bit) dimension");
  }
}

}  // namespace

CountMatrix compare_reference(const BitMatrix& a, const BitMatrix& b,
                              Comparison op) {
  check_conformance(a, b);
  CountMatrix c(a.rows(), b.rows());
  const std::size_t words = ceil_div(a.bit_cols(), kBitsPerWord64);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const auto row_a = a.row64(i);
    for (std::size_t j = 0; j < b.rows(); ++j) {
      const auto row_b = b.row64(j);
      std::uint32_t acc = 0;
      for (std::size_t k = 0; k < words; ++k) {
        acc += static_cast<std::uint32_t>(popcount(apply(op, row_a[k],
                                                         row_b[k])));
      }
      c.at(i, j) = acc;
    }
  }
  return c;
}

CountMatrix compare_bitwise_oracle(const BitMatrix& a, const BitMatrix& b,
                                   Comparison op) {
  check_conformance(a, b);
  CountMatrix c(a.rows(), b.rows());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < b.rows(); ++j) {
      std::uint32_t acc = 0;
      for (std::size_t k = 0; k < a.bit_cols(); ++k) {
        const bool x = a.get(i, k);
        const bool y = b.get(j, k);
        bool bit = false;
        switch (op) {
          case Comparison::kAnd:
            bit = x && y;
            break;
          case Comparison::kXor:
            bit = x != y;
            break;
          case Comparison::kAndNot:
            bit = x && !y;
            break;
        }
        acc += bit ? 1u : 0u;
      }
      c.at(i, j) = acc;
    }
  }
  return c;
}

}  // namespace snp::bits
