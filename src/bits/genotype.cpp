#include "bits/genotype.hpp"

namespace snp::bits {

double GenotypeMatrix::maf(std::size_t locus) const {
  if (samples_ == 0) {
    return 0.0;
  }
  std::size_t total = 0;
  for (std::size_t s = 0; s < samples_; ++s) {
    total += at(locus, s);
  }
  return static_cast<double>(total) /
         (2.0 * static_cast<double>(samples_));
}

BitMatrix encode(const GenotypeMatrix& g, EncodingPlane plane,
                 std::size_t stride_words64) {
  BitMatrix out(g.loci(), g.samples(), stride_words64);
  const std::uint8_t threshold = plane == EncodingPlane::kPresence ? 1 : 2;
  for (std::size_t locus = 0; locus < g.loci(); ++locus) {
    for (std::size_t sample = 0; sample < g.samples(); ++sample) {
      if (g.at(locus, sample) >= threshold) {
        out.set(locus, sample, true);
      }
    }
  }
  return out;
}

}  // namespace snp::bits
