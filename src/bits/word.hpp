// Word-level primitives shared by every engine.
//
// The GPU path (paper Section V) operates on 32-bit words ("each element is
// (by default) 4 bytes"); the CPU path of Alachiotis et al. [11] operates on
// 64-bit words. BitMatrix stores bits contiguously so both views are valid;
// this header pins down the bit-order convention and the popcount helpers.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>

namespace snp::bits {

/// 32-bit word used by the simulated GPU kernels.
using Word32 = std::uint32_t;
/// 64-bit word used by the CPU micro-kernels.
using Word64 = std::uint64_t;

inline constexpr std::size_t kBitsPerWord32 = 32;
inline constexpr std::size_t kBitsPerWord64 = 64;

// Bit i of a row lives in 64-bit word (i / 64) at bit position (i % 64),
// i.e. little-endian bit numbering within little-endian words. On a
// little-endian host the same storage reinterpreted as uint32_t places bit i
// in 32-bit word (i / 32) at position (i % 32), so the two views agree.
static_assert(std::endian::native == std::endian::little,
              "BitMatrix word views assume a little-endian host");

[[nodiscard]] constexpr std::size_t ceil_div(std::size_t a, std::size_t b) {
  return (a + b - 1) / b;
}

[[nodiscard]] constexpr std::size_t round_up(std::size_t a, std::size_t b) {
  return ceil_div(a, b) * b;
}

[[nodiscard]] constexpr int popcount(Word32 w) { return std::popcount(w); }
[[nodiscard]] constexpr int popcount(Word64 w) { return std::popcount(w); }

/// Mask keeping the low `n` bits of a 64-bit word (n in [0, 64]).
[[nodiscard]] constexpr Word64 low_mask64(std::size_t n) {
  return n >= kBitsPerWord64 ? ~Word64{0} : ((Word64{1} << n) - 1);
}

/// Mask keeping the low `n` bits of a 32-bit word (n in [0, 32]).
[[nodiscard]] constexpr Word32 low_mask32(std::size_t n) {
  return n >= kBitsPerWord32 ? ~Word32{0}
                             : static_cast<Word32>((Word32{1} << n) - 1);
}

}  // namespace snp::bits
