// The comparison operations of Eqs. 1-3 and a naive word-at-a-time reference
// engine. The reference is deliberately unblocked and obvious; every
// optimized engine (CPU BLIS-like, simulated GPU kernel) is tested against
// it.
#pragma once

#include <cstdint>
#include <string_view>

#include "bits/bitmatrix.hpp"

namespace snp::bits {

/// The element-wise operation inside the popcount inner product.
enum class Comparison : std::uint8_t {
  kAnd,     ///< LD / pre-negated mixture analysis: popc(a & b)      (Eq. 1)
  kXor,     ///< FastID identity search:            popc(a ^ b)      (Eq. 2)
  kAndNot,  ///< FastID mixture analysis (fused):   popc(a & ~b)     (Eq. 3)
};

[[nodiscard]] constexpr std::string_view to_string(Comparison op) {
  switch (op) {
    case Comparison::kAnd:
      return "AND";
    case Comparison::kXor:
      return "XOR";
    case Comparison::kAndNot:
      return "AND-NOT";
  }
  return "?";
}

[[nodiscard]] constexpr Word64 apply(Comparison op, Word64 a, Word64 b) {
  switch (op) {
    case Comparison::kAnd:
      return a & b;
    case Comparison::kXor:
      return a ^ b;
    case Comparison::kAndNot:
      return a & ~b;
  }
  return 0;
}

[[nodiscard]] constexpr Word32 apply(Comparison op, Word32 a, Word32 b) {
  switch (op) {
    case Comparison::kAnd:
      return a & b;
    case Comparison::kXor:
      return a ^ b;
    case Comparison::kAndNot:
      return a & ~b;
  }
  return 0;
}

/// Number of logic-pipe operations (AND/XOR/NOT/ADD) the GPU kernel issues
/// per word, excluding the popcount itself. AND/XOR: op + accumulate = 2;
/// fused AND-NOT on hardware without a fused unit: op + negate + accumulate
/// = 3. This ratio drives the Vega-vs-NVIDIA asymmetry of Fig. 9.
[[nodiscard]] constexpr int logic_ops_per_word(Comparison op,
                                               bool fused_andnot) {
  if (op == Comparison::kAndNot && !fused_andnot) {
    return 3;
  }
  return 2;
}

/// Naive reference: gamma[i,j] = sum_k popc(op(A[i,k], B[j,k])).
/// Both inputs are row-major over the shared K (bit) dimension; B holds one
/// row per *output column* so no transpose is ever materialized.
/// Requires A.bit_cols() == B.bit_cols().
[[nodiscard]] CountMatrix compare_reference(const BitMatrix& a,
                                            const BitMatrix& b, Comparison op);

/// Bit-at-a-time oracle (slowest, most obviously correct; used only in
/// tests to validate compare_reference itself).
[[nodiscard]] CountMatrix compare_bitwise_oracle(const BitMatrix& a,
                                                 const BitMatrix& b,
                                                 Comparison op);

}  // namespace snp::bits
