#include "bits/bitmatrix.hpp"

#include <algorithm>
#include <stdexcept>

namespace snp::bits {

BitMatrix::BitMatrix(std::size_t rows, std::size_t bit_cols,
                     std::size_t stride_words64)
    : rows_(rows), bit_cols_(bit_cols) {
  if (stride_words64 == 0) {
    throw std::invalid_argument("BitMatrix: stride_words64 must be positive");
  }
  const std::size_t min_words = ceil_div(bit_cols, kBitsPerWord64);
  stride64_ = std::max<std::size_t>(round_up(min_words, stride_words64),
                                    stride_words64);
  data_.assign(rows_ * stride64_, 0);
}

void BitMatrix::set(std::size_t row, std::size_t bit, bool value) {
  if (row >= rows_ || bit >= bit_cols_) {
    throw std::out_of_range("BitMatrix::set: index out of range");
  }
  Word64& w = data_[row * stride64_ + bit / kBitsPerWord64];
  const Word64 mask = Word64{1} << (bit % kBitsPerWord64);
  if (value) {
    w |= mask;
  } else {
    w &= ~mask;
  }
}

bool BitMatrix::get(std::size_t row, std::size_t bit) const {
  if (row >= rows_ || bit >= bit_cols_) {
    throw std::out_of_range("BitMatrix::get: index out of range");
  }
  const Word64 w = data_[row * stride64_ + bit / kBitsPerWord64];
  return ((w >> (bit % kBitsPerWord64)) & 1u) != 0;
}

std::size_t BitMatrix::row_popcount(std::size_t row) const {
  std::size_t count = 0;
  for (const Word64 w : row64(row)) {
    count += static_cast<std::size_t>(popcount(w));
  }
  return count;
}

BitMatrix BitMatrix::with_stride(std::size_t stride_words64) const {
  BitMatrix out(rows_, bit_cols_, stride_words64);
  const std::size_t copy_words = std::min(stride64_, out.stride64_);
  for (std::size_t r = 0; r < rows_; ++r) {
    std::copy_n(data_.data() + r * stride64_, copy_words,
                out.data_.data() + r * out.stride64_);
  }
  return out;
}

BitMatrix BitMatrix::negated() const {
  BitMatrix out(rows_, bit_cols_, stride64_);
  const std::size_t full_words = bit_cols_ / kBitsPerWord64;
  const std::size_t tail_bits = bit_cols_ % kBitsPerWord64;
  for (std::size_t r = 0; r < rows_; ++r) {
    auto src = row64(r);
    auto dst = out.row64(r);
    for (std::size_t w = 0; w < full_words; ++w) {
      dst[w] = ~src[w];
    }
    if (tail_bits != 0) {
      dst[full_words] = ~src[full_words] & low_mask64(tail_bits);
    }
  }
  return out;
}

BitMatrix BitMatrix::row_slice(std::size_t row_begin,
                               std::size_t row_end) const {
  if (row_begin > row_end || row_end > rows_) {
    throw std::out_of_range("BitMatrix::row_slice: invalid range");
  }
  BitMatrix out(row_end - row_begin, bit_cols_, stride64_);
  std::copy_n(data_.data() + row_begin * stride64_,
              (row_end - row_begin) * stride64_, out.data_.data());
  return out;
}

bool BitMatrix::operator==(const BitMatrix& other) const {
  if (rows_ != other.rows_ || bit_cols_ != other.bit_cols_) {
    return false;
  }
  // Strides may differ; compare logical words only.
  const std::size_t words = ceil_div(bit_cols_, kBitsPerWord64);
  for (std::size_t r = 0; r < rows_; ++r) {
    auto a = row64(r);
    auto b = other.row64(r);
    if (!std::equal(a.begin(), a.begin() + static_cast<std::ptrdiff_t>(words),
                    b.begin())) {
      return false;
    }
  }
  return true;
}

bool BitMatrix::padding_is_zero() const {
  const std::size_t full_words = bit_cols_ / kBitsPerWord64;
  const std::size_t tail_bits = bit_cols_ % kBitsPerWord64;
  for (std::size_t r = 0; r < rows_; ++r) {
    auto row = row64(r);
    if (tail_bits != 0 && (row[full_words] & ~low_mask64(tail_bits)) != 0) {
      return false;
    }
    for (std::size_t w = full_words + (tail_bits != 0 ? 1 : 0); w < stride64_;
         ++w) {
      if (row[w] != 0) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace snp::bits
