// BitMatrix: the packed, padded SNP bit matrix of the paper's Fig. 2.
//
// Rows are logical bit vectors (one SNP locus, one profile, ...); columns are
// bit positions (one sample, one SNP site, ...). Rows are padded with zero
// bits up to the row stride so that word-granular kernels never read garbage
// and padding contributes nothing to popcounts. All three comparison
// operations (AND, XOR, AND-NOT) preserve "zero padding in both inputs ->
// zero contribution", which tests assert.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "bits/word.hpp"

namespace snp::bits {

class BitMatrix {
 public:
  BitMatrix() = default;

  /// Creates a rows x bit_cols matrix of zero bits. The row stride is the
  /// smallest multiple of `stride_words64` 64-bit words that covers
  /// `bit_cols` (default: 1 word, i.e. padding only to the next 64 bits).
  BitMatrix(std::size_t rows, std::size_t bit_cols,
            std::size_t stride_words64 = 1);

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t bit_cols() const { return bit_cols_; }
  [[nodiscard]] std::size_t words64_per_row() const { return stride64_; }
  [[nodiscard]] std::size_t words32_per_row() const { return stride64_ * 2; }
  [[nodiscard]] std::size_t size_bytes() const {
    return rows_ * stride64_ * sizeof(Word64);
  }
  [[nodiscard]] bool empty() const { return rows_ == 0 || bit_cols_ == 0; }

  void set(std::size_t row, std::size_t bit, bool value);
  [[nodiscard]] bool get(std::size_t row, std::size_t bit) const;

  /// Number of set bits in a row (padding is always zero, so this is the
  /// popcount over the full stride too).
  [[nodiscard]] std::size_t row_popcount(std::size_t row) const;

  [[nodiscard]] std::span<const Word64> row64(std::size_t row) const {
    return {data_.data() + row * stride64_, stride64_};
  }
  [[nodiscard]] std::span<Word64> row64(std::size_t row) {
    return {data_.data() + row * stride64_, stride64_};
  }
  [[nodiscard]] std::span<const Word32> row32(std::size_t row) const {
    return {reinterpret_cast<const Word32*>(data_.data() + row * stride64_),
            stride64_ * 2};
  }

  [[nodiscard]] std::span<const Word64> raw64() const {
    return {data_.data(), data_.size()};
  }
  [[nodiscard]] std::span<const Word32> raw32() const {
    return {reinterpret_cast<const Word32*>(data_.data()), data_.size() * 2};
  }

  /// Returns a copy whose row stride is padded to `stride_words64` 64-bit
  /// words (used to pad the K dimension to a kernel's k_c tile).
  [[nodiscard]] BitMatrix with_stride(std::size_t stride_words64) const;

  /// Returns the bitwise complement restricted to the logical bit columns
  /// (padding stays zero). Used to pre-negate a mixture database (Eq. 3's
  /// r & ~m rewritten as an AND against a stored ~m).
  [[nodiscard]] BitMatrix negated() const;

  /// Returns the submatrix of rows [row_begin, row_end).
  [[nodiscard]] BitMatrix row_slice(std::size_t row_begin,
                                    std::size_t row_end) const;

  [[nodiscard]] bool operator==(const BitMatrix& other) const;

  /// Verifies the zero-padding invariant (all bits at column >= bit_cols are
  /// zero). Cheap enough to call from tests and debug assertions.
  [[nodiscard]] bool padding_is_zero() const;

 private:
  std::size_t rows_ = 0;
  std::size_t bit_cols_ = 0;
  std::size_t stride64_ = 0;  // 64-bit words per row
  std::vector<Word64> data_;
};

/// Dense count matrix produced by SNP comparisons: gamma[i,j] as in Eqs. 1-3.
class CountMatrix {
 public:
  CountMatrix() = default;
  CountMatrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0) {}

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }
  [[nodiscard]] std::uint32_t& at(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  [[nodiscard]] std::uint32_t at(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }
  [[nodiscard]] std::span<const std::uint32_t> raw() const {
    return {data_.data(), data_.size()};
  }
  [[nodiscard]] std::span<std::uint32_t> raw() {
    return {data_.data(), data_.size()};
  }
  [[nodiscard]] std::size_t size_bytes() const {
    return data_.size() * sizeof(std::uint32_t);
  }
  [[nodiscard]] bool operator==(const CountMatrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_ &&
           data_ == other.data_;
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<std::uint32_t> data_;
};

}  // namespace snp::bits
