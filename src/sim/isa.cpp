#include "sim/isa.hpp"

#include <algorithm>
#include <stdexcept>

namespace snp::sim {

namespace {

int max_reg_of(const std::vector<Instr>& instrs, int acc) {
  for (const auto& i : instrs) {
    acc = std::max({acc, i.dst, i.src1, i.src2});
  }
  return acc;
}

}  // namespace

int Program::max_register() const {
  int acc = -1;
  acc = max_reg_of(prologue, acc);
  acc = max_reg_of(body, acc);
  acc = max_reg_of(epilogue, acc);
  return acc;
}

Program dependent_chain(Opcode op, int chain_len, std::uint64_t iterations) {
  if (chain_len <= 0) {
    throw std::invalid_argument("dependent_chain: chain_len must be > 0");
  }
  Program p;
  // temp = Array[thread_index];
  p.prologue.push_back({Opcode::kLdg, 0, kNoReg, kNoReg, 0});
  const bool binary = op != Opcode::kPopc && op != Opcode::kNot &&
                      op != Opcode::kMov;
  if (binary) {
    p.prologue.push_back({Opcode::kLdg, 1, kNoReg, kNoReg, 0});
  }
  for (int i = 0; i < chain_len; ++i) {
    // temp = op(temp [, other]);  — each reads the previous result.
    p.body.push_back({op, 0, 0, binary ? 1 : kNoReg, 0});
  }
  p.iterations = iterations;
  // Array[thread_index] = temp;  (defeats dead-code elimination)
  p.epilogue.push_back({Opcode::kStg, kNoReg, 0, kNoReg, 0});
  return p;
}

Program independent_streams(Opcode op, int streams, int per_stream,
                            std::uint64_t iterations) {
  if (streams <= 0 || per_stream <= 0) {
    throw std::invalid_argument(
        "independent_streams: streams and per_stream must be > 0");
  }
  Program p;
  const bool binary = op != Opcode::kPopc && op != Opcode::kNot &&
                      op != Opcode::kMov;
  const int shared_src = streams;  // one extra register as the second source
  for (int s = 0; s < streams; ++s) {
    p.prologue.push_back({Opcode::kLdg, s, kNoReg, kNoReg, 0});
  }
  if (binary) {
    p.prologue.push_back({Opcode::kLdg, shared_src, kNoReg, kNoReg, 0});
  }
  for (int i = 0; i < per_stream; ++i) {
    for (int s = 0; s < streams; ++s) {
      p.body.push_back({op, s, s, binary ? shared_src : kNoReg, 0});
    }
  }
  p.iterations = iterations;
  for (int s = 0; s < streams; ++s) {
    p.epilogue.push_back({Opcode::kStg, kNoReg, s, kNoReg, 0});
  }
  return p;
}

Program interleaved_pair(Opcode a, Opcode b, int pairs,
                         std::uint64_t iterations) {
  if (pairs <= 0) {
    throw std::invalid_argument("interleaved_pair: pairs must be > 0");
  }
  Program p;
  // Four independent accumulators per opcode so neither chain's latency
  // hides the other's throughput.
  constexpr int kStreams = 4;
  const int base_a = 0;
  const int base_b = kStreams;
  const int src = 2 * kStreams;
  for (int r = 0; r < src; ++r) {
    p.prologue.push_back({Opcode::kLdg, r, kNoReg, kNoReg, 0});
  }
  p.prologue.push_back({Opcode::kLdg, src, kNoReg, kNoReg, 0});
  auto needs_src2 = [](Opcode op) {
    return op != Opcode::kPopc && op != Opcode::kNot && op != Opcode::kMov;
  };
  for (int i = 0; i < pairs; ++i) {
    const int sa = base_a + i % kStreams;
    const int sb = base_b + i % kStreams;
    p.body.push_back({a, sa, sa, needs_src2(a) ? src : kNoReg, 0});
    p.body.push_back({b, sb, sb, needs_src2(b) ? src : kNoReg, 0});
  }
  p.iterations = iterations;
  for (int r = 0; r < src; ++r) {
    p.epilogue.push_back({Opcode::kStg, kNoReg, r, kNoReg, 0});
  }
  return p;
}

Program strided_lds(int stride_words, int loads, std::uint64_t iterations) {
  if (loads <= 0 || stride_words < 0) {
    throw std::invalid_argument("strided_lds: bad arguments");
  }
  Program p;
  constexpr int kStreams = 4;
  for (int i = 0; i < loads; ++i) {
    p.body.push_back(
        {Opcode::kLds, i % kStreams, kNoReg, kNoReg, stride_words});
  }
  p.iterations = iterations;
  for (int r = 0; r < kStreams && r < loads; ++r) {
    p.epilogue.push_back({Opcode::kStg, kNoReg, r, kNoReg, 0});
  }
  return p;
}

}  // namespace snp::sim
