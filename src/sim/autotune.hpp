// Configuration autotuning over the performance model.
//
// The paper derives m_c, m_r, k_c, n_r analytically (Eqs. 4-7) and ships
// the Table II presets. A natural question the paper leaves open is how
// much headroom an exhaustive search would find. This module enumerates
// the feasible configuration space (every combination that passes
// model::validate, i.e. fits shared memory, registers, occupancy and the
// Eq. 7 bound) and ranks it with the same timing model the figures use —
// so "preset vs tuned" is an apples-to-apples statement within the model.
#pragma once

#include <vector>

#include "bits/compare.hpp"
#include "model/config.hpp"
#include "model/device.hpp"
#include "sim/timing.hpp"

namespace snp::sim {

struct TunedConfig {
  model::KernelConfig config;
  double seconds = 0.0;
  double gops = 0.0;
};

struct AutotuneOptions {
  /// Candidate m_c values (multiples of m_r, bank-aligned by default).
  std::vector<int> m_c_candidates = {8, 16, 32, 64};
  /// n_r is swept in multiples of this granularity up to the register
  /// bound; 0 = use each candidate m_c's Eq. 7 step.
  int n_r_step = 0;
  /// Also sweep k_c at fractions of the shared-memory maximum.
  std::vector<double> k_c_fractions = {0.25, 0.5, 1.0};
  /// Try every factor pair of the device's core count as the grid.
  bool sweep_grid = true;
  /// Keep the `top_k` best configurations.
  std::size_t top_k = 5;
};

/// Exhaustive feasible-space search for the best configuration of `op` on
/// `dev` for `shape`, ranked by modeled kernel time (ascending). The
/// result is never empty: the paper preset (when one exists for the
/// device) is always included as a candidate.
[[nodiscard]] std::vector<TunedConfig> autotune(
    const model::GpuSpec& dev, bits::Comparison op,
    const KernelShape& shape, model::WorkloadKind kind, const AutotuneOptions& options = {});

/// Convenience: modeled speedup of the best tuned configuration over the
/// Table II preset for the same shape (1.0 = preset is optimal).
[[nodiscard]] double tuning_headroom(const model::GpuSpec& dev,
                                     bits::Comparison op,
                                     const KernelShape& shape,
                                     model::WorkloadKind kind);

}  // namespace snp::sim
