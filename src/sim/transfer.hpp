// End-to-end execution timeline: one-time init, host packing, H2D transfer,
// kernel execution, D2H readback — with the double buffering the paper
// implements ("we implemented double buffering for the input and output
// matrices... enqueue data transfer commands to be processed during
// computation", Section VI-A).
//
// The device exposes one copy engine per direction plus the compute engine;
// with double buffering (depth 2), chunk i's upload may overlap chunk i-1's
// kernel, but chunk i's kernel must wait for its own upload, and a buffer
// is reusable only after the kernel consuming it finishes.
#pragma once

#include <cstddef>
#include <vector>

#include "model/device.hpp"

namespace snp::sim {

struct Chunk {
  std::size_t h2d_bytes = 0;
  double kernel_seconds = 0.0;
  std::size_t d2h_bytes = 0;
};

struct ChunkTimes {
  double h2d_start = 0.0, h2d_end = 0.0;
  double kernel_start = 0.0, kernel_end = 0.0;
  double d2h_start = 0.0, d2h_end = 0.0;
};

struct Timeline {
  double total_seconds = 0.0;  ///< init (if included) + makespan
  double init_seconds = 0.0;
  double h2d_seconds = 0.0;     ///< copy-engine busy time
  double kernel_seconds = 0.0;  ///< compute-engine busy time
  double d2h_seconds = 0.0;
  std::vector<ChunkTimes> chunks;

  /// Fraction of transfer time hidden under compute (0 when serial).
  [[nodiscard]] double overlap_fraction() const;
};

struct TimelineOptions {
  bool double_buffered = true;  ///< false = fully serialized (ablation)
  bool include_init = true;     ///< charge the one-time OpenCL init
  int buffer_depth = 2;         ///< in-flight chunks when double buffering
};

[[nodiscard]] Timeline run_timeline(const model::GpuSpec& dev,
                                    const std::vector<Chunk>& chunks,
                                    const TimelineOptions& opts = {});

}  // namespace snp::sim
