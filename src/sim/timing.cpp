#include "sim/timing.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "model/peak.hpp"
#include "sim/memory.hpp"

namespace snp::sim {

namespace {

/// Cycles one cluster spends per N_T word-ops, including the amortized
/// memory instructions (B global loads reused m_r times per thread; A
/// shared loads reused across the n_r / L_fn columns of a thread group).
double cluster_cycles_per_group_op(const model::GpuSpec& dev,
                                   const model::KernelConfig& cfg,
                                   bits::Comparison op, bool pre_negated) {
  const model::InstrMix mix = model::kernel_mix(dev, op, pre_negated);
  const int lfn = dev.pipe(model::InstrClass::kPopc).latency_cycles;
  const double mem_instrs =
      1.0 / cfg.m_r + static_cast<double>(lfn) / cfg.n_r;

  double per_pipe[8] = {};
  auto add = [&](model::InstrClass cls, double count) {
    const auto pipe = static_cast<std::size_t>(dev.pipe_index(cls));
    per_pipe[pipe] += count * dev.n_t /
                      dev.pipe(cls).units_per_cluster;
  };
  add(model::InstrClass::kLogic, mix.logic);
  add(model::InstrClass::kAdd, mix.add);
  add(model::InstrClass::kPopc, mix.popc);
  add(model::InstrClass::kMem, mem_instrs);
  double worst = 0.0;
  for (std::size_t p = 0; p < dev.pipes.size(); ++p) {
    worst = std::max(worst, per_pipe[p]);
  }
  return worst;
}

}  // namespace

KernelTiming estimate_kernel(const model::GpuSpec& dev,
                             const model::KernelConfig& cfg,
                             bits::Comparison op, const KernelShape& shape,
                             bool pre_negated) {
  if (shape.m == 0 || shape.n == 0 || shape.k_words == 0) {
    throw std::invalid_argument("estimate_kernel: degenerate shape");
  }
  const auto check = model::validate(cfg, dev);
  if (!check.ok) {
    throw std::invalid_argument("estimate_kernel: invalid config: " +
                                check.reason);
  }

  const auto m_c = static_cast<std::size_t>(cfg.m_c);
  const auto n_r = static_cast<std::size_t>(cfg.n_r);
  const auto k_c = static_cast<std::size_t>(cfg.k_c);
  const std::size_t tiles_m = bits::ceil_div(shape.m, m_c);
  const std::size_t tiles_n = bits::ceil_div(shape.n, n_r);
  const std::size_t panels = bits::ceil_div(shape.k_words, k_c);

  // Tile assignment over the core grid; idle cores (grid larger than the
  // tile space) do not contribute to contention.
  const auto gm = static_cast<std::size_t>(cfg.grid.grid_m);
  const auto gn = static_cast<std::size_t>(cfg.grid.grid_n);
  const std::size_t tiles_per_core =
      bits::ceil_div(tiles_m, gm) * bits::ceil_div(tiles_n, gn);
  const int active_cores = static_cast<int>(
      std::min<std::size_t>(static_cast<std::size_t>(cfg.grid.cores()),
                            std::min(tiles_m, gm) * std::min(tiles_n, gn)));

  const double group_cycles =
      cluster_cycles_per_group_op(dev, cfg, op, pre_negated);
  const double ops_per_cycle_core =
      dev.n_t / group_cycles * dev.n_clusters;

  const auto lsu = dev.pipe(model::InstrClass::kMem);
  const double lsu_words_per_cycle =
      static_cast<double>(lsu.units_per_cluster) * dev.n_clusters;
  constexpr double kBarrierCycles = 64.0;

  // Per-tile cost: thread groups are launched at full tile size, so edge
  // tiles cost as much as interior ones (the utilization loss the paper's
  // framework accepts by construction).
  double tile_compute_cycles = 0.0;
  double tile_fill_cycles = 0.0;
  double tile_bytes = 0.0;
  for (std::size_t p = 0; p < panels; ++p) {
    const std::size_t kw = std::min(k_c, shape.k_words - p * k_c);
    const auto kw_d = static_cast<double>(kw);
    tile_compute_cycles += static_cast<double>(m_c) *
                           static_cast<double>(n_r) * kw_d /
                           ops_per_cycle_core;
    tile_fill_cycles +=
        static_cast<double>(m_c) * kw_d / lsu_words_per_cycle +
        kBarrierCycles;
    // DRAM: A panel fill + compulsory B stream; C written once per tile.
    tile_bytes += 4.0 * (static_cast<double>(m_c) * kw_d +
                         kw_d * static_cast<double>(n_r));
  }
  tile_bytes += 4.0 * static_cast<double>(m_c) * static_cast<double>(n_r);

  const double core_cycles =
      static_cast<double>(tiles_per_core) *
      (tile_compute_cycles + tile_fill_cycles);

  KernelTiming t;
  t.active_cores = active_cores;
  t.clock_ghz = dev.clock_ghz(active_cores);
  t.core_cycles = core_cycles;

  const double raw_seconds = core_cycles / (t.clock_ghz * 1e9);
  const double core_bytes = static_cast<double>(tiles_per_core) * tile_bytes;
  t.per_core_demand_gbps =
      raw_seconds > 0.0 ? core_bytes / raw_seconds / 1e9 : 0.0;
  t.mem_efficiency =
      contention_efficiency(dev, active_cores, t.per_core_demand_gbps);
  t.seconds = raw_seconds / t.mem_efficiency;
  t.launch_seconds = launch_seconds(dev);
  t.dram_bytes = core_bytes * active_cores;

  t.wordops = static_cast<double>(shape.m) * static_cast<double>(shape.n) *
              static_cast<double>(shape.k_words);
  t.gops = t.wordops / t.seconds / 1e9;
  t.peak_gops =
      model::peak_wordops_per_s(dev, op, pre_negated, active_cores) / 1e9;
  t.pct_of_peak = 100.0 * t.gops / t.peak_gops;
  return t;
}

double cpu_kernel_seconds(const model::CpuSpec& cpu, double wordops) {
  const double peak = model::cpu_peak_wordops_per_s(cpu);
  return wordops / (peak * cpu.efficiency);
}

}  // namespace snp::sim
