// Tile-level kernel timing for full-size SNP comparison kernels.
//
// The cycle-level CoreSim is exact but too slow for 20-million-profile
// databases; this model computes the same quantities analytically, at tile
// granularity, from the identical device parameters:
//   * per-cluster issue cycles per thread-group word-op, per pipe (the
//     bottleneck-pipe accounting of model::cluster_rate, extended with the
//     amortized memory instructions the kernel issues);
//   * shared-memory fill + barrier cost per A-tile panel;
//   * DRAM traffic per tile (A fill, compulsory B stream, C writeback) fed
//     into the contention model;
//   * core-grid tile assignment, edge-tile quantization, launch overhead,
//     and the DVFS clock for the active-core count.
// Tests validate it against CoreSim on small shapes.
#pragma once

#include <cstddef>

#include "bits/compare.hpp"
#include "model/config.hpp"
#include "model/device.hpp"

namespace snp::sim {

struct KernelShape {
  std::size_t m = 0;        ///< output rows (A rows)
  std::size_t n = 0;        ///< output cols (B rows)
  std::size_t k_words = 0;  ///< inner dimension in 32-bit words
};

struct KernelTiming {
  double seconds = 0.0;         ///< kernel start -> end
  double launch_seconds = 0.0;  ///< enqueue -> start
  double core_cycles = 0.0;     ///< max-loaded core, before contention
  double clock_ghz = 0.0;
  double wordops = 0.0;      ///< useful work: m * n * k_words
  double gops = 0.0;         ///< achieved Gword-ops/s
  double peak_gops = 0.0;    ///< FU peak at this active-core count
  double pct_of_peak = 0.0;  ///< gops / peak_gops * 100
  double mem_efficiency = 1.0;
  double per_core_demand_gbps = 0.0;
  double dram_bytes = 0.0;
  int active_cores = 0;

  [[nodiscard]] double total_seconds() const {
    return seconds + launch_seconds;
  }
};

/// Estimates kernel execution time for comparing an (m x k) A against an
/// (n x k) B under `cfg` on `dev`. `pre_negated` selects the Eq. 3
/// lowering for AND-NOT workloads.
[[nodiscard]] KernelTiming estimate_kernel(const model::GpuSpec& dev,
                                           const model::KernelConfig& cfg,
                                           bits::Comparison op,
                                           const KernelShape& shape,
                                           bool pre_negated = false);

/// Modeled Xeon baseline time for the same work: peak popcount throughput
/// derated by the 80-90 % efficiency of the BLIS CPU implementation [11].
[[nodiscard]] double cpu_kernel_seconds(const model::CpuSpec& cpu,
                                        double wordops);

}  // namespace snp::sim
