#include "sim/memory.hpp"

#include <cmath>

namespace snp::sim {

double contention_efficiency(const model::GpuSpec& dev, int active_cores,
                             double per_core_gbps) {
  if (active_cores <= 0 || per_core_gbps <= 0.0 ||
      dev.dram_gbps_effective <= 0.0) {
    return 1.0;
  }
  const double demand = active_cores * per_core_gbps;
  const double ratio = demand / dev.dram_gbps_effective;
  const double p = dev.contention_p;
  return std::pow(1.0 + std::pow(ratio, p), -1.0 / p);
}

double pcie_seconds(const model::GpuSpec& dev, std::size_t bytes) {
  return static_cast<double>(bytes) / (dev.pcie_gbps * 1e9);
}

double pcie_latency_seconds() { return 10e-6; }

double init_seconds(const model::GpuSpec& dev) { return dev.init_ms * 1e-3; }

double launch_seconds(const model::GpuSpec& dev) {
  return dev.launch_overhead_us * 1e-6;
}

}  // namespace snp::sim
