// Roofline analysis for SNP-comparison kernels.
//
// The paper's performance story is exactly a roofline story: the kernel's
// attainable throughput is min(FU peak, arithmetic intensity x memory
// bandwidth), the Fig. 5 K-sweep walks a workload along the intensity
// axis (deeper K = more popcounts per byte of C traffic), and the Vega
// anomaly is a device living left of its ridge point. This module makes
// that analysis a first-class, testable object on top of the same device
// descriptors and the tile-level byte accounting.
#pragma once

#include "bits/compare.hpp"
#include "model/config.hpp"
#include "model/device.hpp"
#include "sim/timing.hpp"

namespace snp::sim {

struct RooflinePoint {
  /// Word-ops per byte of modeled DRAM traffic.
  double arithmetic_intensity = 0.0;
  /// min(peak, intensity * effective bandwidth), in Gword-ops/s.
  double attainable_gops = 0.0;
  /// What the timing model actually achieves (includes quantization,
  /// fill, launch-free kernel time).
  double achieved_gops = 0.0;
  double peak_gops = 0.0;
  bool memory_bound = false;  ///< intensity below the ridge point
};

/// Intensity (word-ops/byte) at which the compute roof meets the memory
/// roof for `op` on `dev`.
[[nodiscard]] double ridge_intensity(const model::GpuSpec& dev,
                                     bits::Comparison op,
                                     bool pre_negated = false);

/// Roofline placement of one kernel invocation.
[[nodiscard]] RooflinePoint roofline_for(const model::GpuSpec& dev,
                                         const model::KernelConfig& cfg,
                                         bits::Comparison op,
                                         const KernelShape& shape,
                                         bool pre_negated = false);

}  // namespace snp::sim
