// Chrome-trace export of simulated execution timelines.
//
// Writes a Timeline (init + per-chunk h2d / kernel / d2h intervals) as a
// Trace Event Format JSON array, loadable in chrome://tracing or Perfetto,
// with one track per engine. This is how you *see* double buffering doing
// its job — upload bars sliding under kernel bars — and what we used to
// sanity-check the Fig. 6/8 pipelines.
//
// All writers here are thin adapters over the single shared emitter in
// obs/span.hpp (obs::write_trace_events): they convert their source —
// simulated Timeline, per-chunk HostChunkEvents, collected obs::Spans —
// into obs::TraceEvents on the canonical pid/tid tracks and emit one
// consistent JSON dialect. write_merged_chrome_trace combines all three
// sources into one file: pid 0 = simulated device engines (virtual
// clock), pid 1 = host threads (span wall clock), pid 2 = host pipeline
// stages (wall clock since the compare started).
#pragma once

#include <cstddef>
#include <iosfwd>
#include <span>
#include <string>

#include "obs/span.hpp"
#include "sim/transfer.hpp"

namespace snp::sim {

/// Emits `tl` as Trace Event Format JSON. Timestamps are microseconds on
/// the virtual clock; tracks: init(0), h2d(1), kernel(2), d2h(3).
void write_chrome_trace(const Timeline& tl, std::ostream& os,
                        const std::string& device_name = "simulated GPU");

/// Convenience: render to a string (tests, small timelines).
[[nodiscard]] std::string chrome_trace_json(
    const Timeline& tl, const std::string& device_name = "simulated GPU");

/// One chunk of a host-driven compare() pipeline, as recorded in
/// TimingReport::chunk_events: the simulated device intervals of the
/// chunk's h2d / kernel / d2h commands (virtual clock), plus the real
/// host wall-clock intervals of the asynchronous pack -> execute -> drain
/// stages (seconds since the call started; all zero on the serial path,
/// which has no host pipeline).
struct HostChunkEvent {
  std::size_t index = 0;
  std::size_t row0 = 0;  ///< first streamed row of the chunk
  std::size_t rows = 0;
  // Simulated virtual-clock intervals.
  double h2d_start = 0.0, h2d_end = 0.0;
  double kernel_start = 0.0, kernel_end = 0.0;
  double d2h_start = 0.0, d2h_end = 0.0;
  // Real host wall-clock of the thread-pool pipeline.
  double host_queued = 0.0;  ///< when the chunk entered the task graph
  double host_pack_start = 0.0, host_pack_end = 0.0;
  double host_exec_start = 0.0, host_exec_end = 0.0;
  double host_drain_start = 0.0, host_drain_end = 0.0;
};

/// Emits the *host* pipeline of an async compare() as Trace Event Format
/// JSON: tracks pack(0), execute(1), drain(2), wall-clock microseconds.
/// This is the measured counterpart of write_chrome_trace's simulated
/// timeline — pack bars sliding under execute bars show the thread pool
/// overlapping I/O-side packing with compute.
void write_host_chrome_trace(std::span<const HostChunkEvent> chunks,
                             std::ostream& os,
                             const std::string& label = "host pipeline");

[[nodiscard]] std::string host_chrome_trace_json(
    std::span<const HostChunkEvent> chunks,
    const std::string& label = "host pipeline");

/// The unified per-run trace: one Chrome-trace JSON covering
///   pid 0 — the simulated device timeline `tl` (pass nullptr when the run
///           had none, e.g. CPU contexts), virtual-clock microseconds;
///   pid 1 — host spans collected in `spans` (one track per real thread),
///           wall-clock microseconds since the collector session began;
///   pid 2 — the async pipeline's pack/execute/drain stage view from
///           `chunks`, wall-clock microseconds since compare() started.
/// `host_anchor_us` is the session-clock time at which the compare
/// started (TimingReport::trace_anchor_us): pid-0 and pid-2 timestamps
/// are shifted by it so all three pids share the span clock's origin —
/// required for the cross-pid flow arrows (request chains) to stay
/// monotone. Pass 0 to keep each source on its native origin (legacy
/// layout; flow arrows between pids may then point backwards).
void write_merged_chrome_trace(const obs::TraceCollector& spans,
                               const Timeline* tl,
                               std::span<const HostChunkEvent> chunks,
                               std::ostream& os,
                               const std::string& device_name,
                               double host_anchor_us = 0.0);

[[nodiscard]] std::string merged_chrome_trace_json(
    const obs::TraceCollector& spans, const Timeline* tl,
    std::span<const HostChunkEvent> chunks,
    const std::string& device_name, double host_anchor_us = 0.0);

}  // namespace snp::sim
