// Chrome-trace export of simulated execution timelines.
//
// Writes a Timeline (init + per-chunk h2d / kernel / d2h intervals) as a
// Trace Event Format JSON array, loadable in chrome://tracing or Perfetto,
// with one track per engine. This is how you *see* double buffering doing
// its job — upload bars sliding under kernel bars — and what we used to
// sanity-check the Fig. 6/8 pipelines.
#pragma once

#include <iosfwd>
#include <string>

#include "sim/transfer.hpp"

namespace snp::sim {

/// Emits `tl` as Trace Event Format JSON. Timestamps are microseconds on
/// the virtual clock; tracks: init(0), h2d(1), kernel(2), d2h(3).
void write_chrome_trace(const Timeline& tl, std::ostream& os,
                        const std::string& device_name = "simulated GPU");

/// Convenience: render to a string (tests, small timelines).
[[nodiscard]] std::string chrome_trace_json(
    const Timeline& tl, const std::string& device_name = "simulated GPU");

}  // namespace snp::sim
