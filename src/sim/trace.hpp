// Chrome-trace export of simulated execution timelines.
//
// Writes a Timeline (init + per-chunk h2d / kernel / d2h intervals) as a
// Trace Event Format JSON array, loadable in chrome://tracing or Perfetto,
// with one track per engine. This is how you *see* double buffering doing
// its job — upload bars sliding under kernel bars — and what we used to
// sanity-check the Fig. 6/8 pipelines.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <span>
#include <string>

#include "sim/transfer.hpp"

namespace snp::sim {

/// Emits `tl` as Trace Event Format JSON. Timestamps are microseconds on
/// the virtual clock; tracks: init(0), h2d(1), kernel(2), d2h(3).
void write_chrome_trace(const Timeline& tl, std::ostream& os,
                        const std::string& device_name = "simulated GPU");

/// Convenience: render to a string (tests, small timelines).
[[nodiscard]] std::string chrome_trace_json(
    const Timeline& tl, const std::string& device_name = "simulated GPU");

/// One chunk of a host-driven compare() pipeline, as recorded in
/// TimingReport::chunk_events: the simulated device intervals of the
/// chunk's h2d / kernel / d2h commands (virtual clock), plus the real
/// host wall-clock intervals of the asynchronous pack -> execute -> drain
/// stages (seconds since the call started; all zero on the serial path,
/// which has no host pipeline).
struct HostChunkEvent {
  std::size_t index = 0;
  std::size_t row0 = 0;  ///< first streamed row of the chunk
  std::size_t rows = 0;
  // Simulated virtual-clock intervals.
  double h2d_start = 0.0, h2d_end = 0.0;
  double kernel_start = 0.0, kernel_end = 0.0;
  double d2h_start = 0.0, d2h_end = 0.0;
  // Real host wall-clock of the thread-pool pipeline.
  double host_queued = 0.0;  ///< when the chunk entered the task graph
  double host_pack_start = 0.0, host_pack_end = 0.0;
  double host_exec_start = 0.0, host_exec_end = 0.0;
  double host_drain_start = 0.0, host_drain_end = 0.0;
};

/// Emits the *host* pipeline of an async compare() as Trace Event Format
/// JSON: tracks pack(0), execute(1), drain(2), wall-clock microseconds.
/// This is the measured counterpart of write_chrome_trace's simulated
/// timeline — pack bars sliding under execute bars show the thread pool
/// overlapping I/O-side packing with compute.
void write_host_chrome_trace(std::span<const HostChunkEvent> chunks,
                             std::ostream& os,
                             const std::string& label = "host pipeline");

[[nodiscard]] std::string host_chrome_trace_json(
    std::span<const HostChunkEvent> chunks,
    const std::string& label = "host pipeline");

}  // namespace snp::sim
