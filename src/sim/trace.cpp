#include "sim/trace.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>
#include <utility>
#include <vector>

namespace snp::sim {

namespace {

// Canonical pid assignment of the merged trace (see trace.hpp).
constexpr std::uint32_t kDevicePid = 0;
constexpr std::uint32_t kHostSpanPid = 1;
constexpr std::uint32_t kPipelinePid = 2;

void push_slice(std::vector<obs::TraceEvent>& out, std::string name,
                std::uint32_t pid, std::uint32_t tid, double start_s,
                double end_s) {
  if (end_s <= start_s) {
    return;  // zero-length stage (e.g. empty transfer)
  }
  obs::TraceEvent ev;
  ev.name = std::move(name);
  ev.pid = pid;
  ev.tid = tid;
  ev.ts_us = start_s * 1e6;
  ev.dur_us = (end_s - start_s) * 1e6;
  out.push_back(std::move(ev));
}

/// Device-engine tracks: init(0), h2d(1), kernel(2), d2h(3) under `pid`.
void append_timeline(const Timeline& tl, const std::string& device_name,
                     std::uint32_t pid,
                     std::vector<obs::TrackLabel>& tracks,
                     std::vector<obs::TraceEvent>& events) {
  const char* names[] = {"init", "h2d copy", "kernel", "d2h copy"};
  for (std::uint32_t tid = 0; tid < 4; ++tid) {
    tracks.push_back({pid, tid, std::string(names[tid]) + " (" +
                                    device_name + ")"});
  }
  if (tl.init_seconds > 0.0) {
    push_slice(events, "platform init", pid, 0, 0.0, tl.init_seconds);
  }
  for (std::size_t i = 0; i < tl.chunks.size(); ++i) {
    const ChunkTimes& c = tl.chunks[i];
    const std::string idx = std::to_string(i);
    push_slice(events, "h2d chunk " + idx, pid, 1, c.h2d_start, c.h2d_end);
    push_slice(events, "kernel chunk " + idx, pid, 2, c.kernel_start,
               c.kernel_end);
    push_slice(events, "d2h chunk " + idx, pid, 3, c.d2h_start,
               c.d2h_end);
  }
}

/// Host pipeline stage tracks: pack(0), execute(1), drain(2) under `pid`.
void append_host_chunks(std::span<const HostChunkEvent> chunks,
                        const std::string& label, std::uint32_t pid,
                        std::vector<obs::TrackLabel>& tracks,
                        std::vector<obs::TraceEvent>& events) {
  const char* names[] = {"pack", "execute", "drain"};
  for (std::uint32_t tid = 0; tid < 3; ++tid) {
    tracks.push_back({pid, tid,
                      std::string(names[tid]) + " (" + label + ")"});
  }
  for (const HostChunkEvent& c : chunks) {
    const std::string idx = std::to_string(c.index);
    push_slice(events, "pack chunk " + idx, pid, 0, c.host_pack_start,
               c.host_pack_end);
    push_slice(events, "exec chunk " + idx, pid, 1, c.host_exec_start,
               c.host_exec_end);
    push_slice(events, "drain chunk " + idx, pid, 2, c.host_drain_start,
               c.host_drain_end);
  }
}

}  // namespace

void write_chrome_trace(const Timeline& tl, std::ostream& os,
                        const std::string& device_name) {
  std::vector<obs::TrackLabel> tracks;
  std::vector<obs::TraceEvent> events;
  // Standalone timeline traces keep the historical pid 0 layout.
  append_timeline(tl, device_name, kDevicePid, tracks, events);
  obs::write_trace_events(tracks, events, os);
}

std::string chrome_trace_json(const Timeline& tl,
                              const std::string& device_name) {
  std::ostringstream os;
  write_chrome_trace(tl, os, device_name);
  return os.str();
}

void write_host_chrome_trace(std::span<const HostChunkEvent> chunks,
                             std::ostream& os, const std::string& label) {
  std::vector<obs::TrackLabel> tracks;
  std::vector<obs::TraceEvent> events;
  // Standalone host-pipeline traces likewise stay on pid 0.
  append_host_chunks(chunks, label, kDevicePid, tracks, events);
  obs::write_trace_events(tracks, events, os);
}

std::string host_chrome_trace_json(std::span<const HostChunkEvent> chunks,
                                   const std::string& label) {
  std::ostringstream os;
  write_host_chrome_trace(chunks, os, label);
  return os.str();
}

void write_merged_chrome_trace(const obs::TraceCollector& spans,
                               const Timeline* tl,
                               std::span<const HostChunkEvent> chunks,
                               std::ostream& os,
                               const std::string& device_name,
                               double host_anchor_us) {
  std::vector<obs::TrackLabel> tracks;
  std::vector<obs::TraceEvent> events;
  // Re-anchors a [from, events.size()) range of just-appended events
  // (device virtual clock or compare-relative wall clock, both t=0 at
  // compare start) onto the span clock's session origin.
  const auto shift_from = [&events, host_anchor_us](std::size_t from) {
    for (std::size_t i = from; i < events.size(); ++i) {
      events[i].ts_us += host_anchor_us;
    }
  };
  if (tl != nullptr) {
    append_timeline(*tl, device_name + ", virtual clock", kDevicePid,
                    tracks, events);
    shift_from(0);
  } else if (!chunks.empty()) {
    // Functional compare() has no Timeline, but each chunk event carries
    // the simulated h2d/kernel/d2h intervals — reconstruct the device
    // engine tracks from those so the merged trace still shows the
    // virtual-clock side.
    const char* names[] = {"h2d copy", "kernel", "d2h copy"};
    for (std::uint32_t tid = 0; tid < 3; ++tid) {
      tracks.push_back({kDevicePid, tid + 1,
                        std::string(names[tid]) + " (" + device_name +
                            ", virtual clock)"});
    }
    for (const HostChunkEvent& c : chunks) {
      const std::string idx = std::to_string(c.index);
      push_slice(events, "h2d chunk " + idx, kDevicePid, 1, c.h2d_start,
                 c.h2d_end);
      push_slice(events, "kernel chunk " + idx, kDevicePid, 2,
                 c.kernel_start, c.kernel_end);
      push_slice(events, "d2h chunk " + idx, kDevicePid, 3, c.d2h_start,
                 c.d2h_end);
    }
    shift_from(0);
  }
  // Host spans already carry pid 1 and a per-thread tid; label the
  // threads that actually appear.
  std::uint32_t max_tid = 0;
  bool any_span = false;
  for (obs::TraceEvent& ev : spans.events()) {
    ev.pid = kHostSpanPid;
    max_tid = std::max(max_tid, ev.tid);
    any_span = true;
    events.push_back(std::move(ev));
  }
  if (any_span) {
    for (std::uint32_t tid = 0; tid <= max_tid; ++tid) {
      tracks.push_back({kHostSpanPid, tid,
                        "host thread " + std::to_string(tid) + " (spans)"});
    }
  }
  if (!chunks.empty()) {
    const std::size_t pipeline_from = events.size();
    append_host_chunks(chunks, device_name + " chunk pipeline",
                       kPipelinePid, tracks, events);
    shift_from(pipeline_from);
  }
  obs::write_trace_events(tracks, events, os);
}

std::string merged_chrome_trace_json(const obs::TraceCollector& spans,
                                     const Timeline* tl,
                                     std::span<const HostChunkEvent> chunks,
                                     const std::string& device_name,
                                     double host_anchor_us) {
  std::ostringstream os;
  write_merged_chrome_trace(spans, tl, chunks, os, device_name,
                            host_anchor_us);
  return os.str();
}

}  // namespace snp::sim
