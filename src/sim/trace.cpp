#include "sim/trace.hpp"

#include <ostream>
#include <sstream>

namespace snp::sim {

namespace {

void emit_event(std::ostream& os, bool& first, const std::string& name,
                int tid, double start_s, double end_s) {
  if (end_s <= start_s) {
    return;  // zero-length stage (e.g. empty transfer)
  }
  if (!first) {
    os << ",\n";
  }
  first = false;
  os << "  {\"name\": \"" << name << "\", \"ph\": \"X\", \"pid\": 0, "
     << "\"tid\": " << tid << ", \"ts\": " << start_s * 1e6
     << ", \"dur\": " << (end_s - start_s) * 1e6 << "}";
}

}  // namespace

void write_chrome_trace(const Timeline& tl, std::ostream& os,
                        const std::string& device_name) {
  os << "[\n";
  bool first = true;
  // Thread-name metadata so the tracks are labeled.
  const char* tracks[] = {"init", "h2d copy", "kernel", "d2h copy"};
  for (int tid = 0; tid < 4; ++tid) {
    if (!first) {
      os << ",\n";
    }
    first = false;
    os << "  {\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 0, "
       << "\"tid\": " << tid << ", \"args\": {\"name\": \"" << tracks[tid]
       << " (" << device_name << ")\"}}";
  }
  if (tl.init_seconds > 0.0) {
    emit_event(os, first, "platform init", 0, 0.0, tl.init_seconds);
  }
  for (std::size_t i = 0; i < tl.chunks.size(); ++i) {
    const ChunkTimes& c = tl.chunks[i];
    const std::string idx = std::to_string(i);
    emit_event(os, first, "h2d chunk " + idx, 1, c.h2d_start, c.h2d_end);
    emit_event(os, first, "kernel chunk " + idx, 2, c.kernel_start,
               c.kernel_end);
    emit_event(os, first, "d2h chunk " + idx, 3, c.d2h_start, c.d2h_end);
  }
  os << "\n]\n";
}

std::string chrome_trace_json(const Timeline& tl,
                              const std::string& device_name) {
  std::ostringstream os;
  write_chrome_trace(tl, os, device_name);
  return os.str();
}

void write_host_chrome_trace(std::span<const HostChunkEvent> chunks,
                             std::ostream& os, const std::string& label) {
  os << "[\n";
  bool first = true;
  const char* tracks[] = {"pack", "execute", "drain"};
  for (int tid = 0; tid < 3; ++tid) {
    if (!first) {
      os << ",\n";
    }
    first = false;
    os << "  {\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 0, "
       << "\"tid\": " << tid << ", \"args\": {\"name\": \"" << tracks[tid]
       << " (" << label << ")\"}}";
  }
  for (const HostChunkEvent& c : chunks) {
    const std::string idx = std::to_string(c.index);
    emit_event(os, first, "pack chunk " + idx, 0, c.host_pack_start,
               c.host_pack_end);
    emit_event(os, first, "exec chunk " + idx, 1, c.host_exec_start,
               c.host_exec_end);
    emit_event(os, first, "drain chunk " + idx, 2, c.host_drain_start,
               c.host_drain_end);
  }
  os << "\n]\n";
}

std::string host_chrome_trace_json(std::span<const HostChunkEvent> chunks,
                                   const std::string& label) {
  std::ostringstream os;
  write_host_chrome_trace(chunks, os, label);
  return os.str();
}

}  // namespace snp::sim
