#include "sim/device_sim.hpp"

#include <algorithm>
#include <array>
#include <limits>
#include <stdexcept>

namespace snp::sim {

namespace {

enum class Phase : std::uint8_t { kPrologue, kBody, kOverhead, kEpilogue,
                                  kDone };

struct GroupState {
  Phase phase = Phase::kPrologue;
  std::size_t pc = 0;
  std::uint64_t iter = 0;
  int overhead_left = 0;
  std::vector<std::uint64_t> reg_ready;
  std::uint64_t counter_ready = 0;
};

const Instr* current_instr(const Program& prog, const GroupState& g) {
  switch (g.phase) {
    case Phase::kPrologue:
      return &prog.prologue[g.pc];
    case Phase::kBody:
      return &prog.body[g.pc];
    case Phase::kEpilogue:
      return &prog.epilogue[g.pc];
    case Phase::kOverhead:
    case Phase::kDone:
      return nullptr;
  }
  return nullptr;
}

void advance(const Program& prog, GroupState& g, int overhead_instrs) {
  switch (g.phase) {
    case Phase::kPrologue:
      if (++g.pc >= prog.prologue.size()) {
        g.pc = 0;
        g.phase = prog.body.empty() || prog.iterations == 0
                      ? Phase::kEpilogue
                      : Phase::kBody;
        if (g.phase == Phase::kEpilogue && prog.epilogue.empty()) {
          g.phase = Phase::kDone;
        }
      }
      break;
    case Phase::kBody:
      if (++g.pc >= prog.body.size()) {
        g.pc = 0;
        ++g.iter;
        if (overhead_instrs > 0) {
          g.phase = Phase::kOverhead;
          g.overhead_left = overhead_instrs;
        } else if (g.iter >= prog.iterations) {
          g.phase = prog.epilogue.empty() ? Phase::kDone : Phase::kEpilogue;
        }
      }
      break;
    case Phase::kOverhead:
      if (--g.overhead_left <= 0) {
        g.phase = g.iter >= prog.iterations
                      ? (prog.epilogue.empty() ? Phase::kDone
                                               : Phase::kEpilogue)
                      : Phase::kBody;
      }
      break;
    case Phase::kEpilogue:
      if (++g.pc >= prog.epilogue.size()) {
        g.phase = Phase::kDone;
      }
      break;
    case Phase::kDone:
      break;
  }
}

/// One compute core's in-flight state for the lockstep loop.
struct CoreState {
  std::vector<GroupState> groups;
  std::vector<std::array<std::uint64_t, 8>> pipe_free;  // per cluster
  std::vector<std::size_t> rr;
  std::size_t done_count = 0;
  std::uint64_t finished_at = 0;
};

}  // namespace

DeviceSim::DeviceSim(model::GpuSpec dev, DramBusSpec bus, SimOptions opts)
    : dev_(std::move(dev)), bus_(bus), opts_(opts) {
  if (!dev_.valid()) {
    throw std::invalid_argument("DeviceSim: invalid device spec");
  }
  if (bus_.bytes_per_cycle <= 0.0 || bus_.burst_cycles <= 0.0) {
    throw std::invalid_argument("DeviceSim: invalid bus spec");
  }
}

DeviceStats DeviceSim::run(const Program& program, int groups_per_core,
                           int n_cores, double bytes_per_mem_op) const {
  if (groups_per_core <= 0 || n_cores <= 0 || bytes_per_mem_op < 0.0) {
    throw std::invalid_argument("DeviceSim::run: bad arguments");
  }
  const int regs = program.max_register() + 1;
  const auto n_cl = static_cast<std::size_t>(dev_.n_clusters);

  std::vector<CoreState> cores(static_cast<std::size_t>(n_cores));
  for (auto& core : cores) {
    core.groups.assign(static_cast<std::size_t>(groups_per_core),
                       GroupState{});
    for (auto& g : core.groups) {
      g.reg_ready.assign(static_cast<std::size_t>(std::max(regs, 1)), 0);
      if (program.prologue.empty()) {
        g.phase = program.body.empty() ? Phase::kEpilogue : Phase::kBody;
        if (g.phase == Phase::kEpilogue && program.epilogue.empty()) {
          g.phase = Phase::kDone;
        }
      }
    }
    core.pipe_free.assign(n_cl, {});
    core.rr.assign(n_cl, 0);
  }

  DeviceStats stats;
  stats.core_cycles.assign(static_cast<std::size_t>(n_cores), 0);

  double bus_tokens = bus_.bytes_per_cycle * bus_.burst_cycles;
  const double bus_cap = bus_tokens;
  std::size_t cores_done = 0;
  std::uint64_t cycle = 0;
  // Hard stop: generous bound so a modeling bug cannot hang tests.
  const std::uint64_t limit =
      (program.dynamic_instructions() + 64) *
          static_cast<std::uint64_t>(groups_per_core) * 64u +
      1'000'000u;

  auto issue_cycles_of = [&](const Instr& in) -> std::uint64_t {
    const auto& pipe = dev_.pipe(instr_class(in.op));
    return static_cast<std::uint64_t>(
        (dev_.n_t + pipe.units_per_cluster - 1) / pipe.units_per_cluster);
  };
  auto latency_of = [&](const Instr& in) -> std::uint64_t {
    if (in.op == Opcode::kLdg) {
      return static_cast<std::uint64_t>(opts_.global_latency_cycles);
    }
    return static_cast<std::uint64_t>(
        dev_.pipe(instr_class(in.op)).latency_cycles);
  };
  auto is_mem = [](Opcode op) {
    return op == Opcode::kLdg || op == Opcode::kStg;
  };

  while (cores_done < cores.size() && cycle < limit) {
    bus_tokens = std::min(bus_cap, bus_tokens + bus_.bytes_per_cycle);
    // Rotate the core that gets first claim on the bus each cycle so no
    // core is structurally favored.
    const std::size_t first =
        cores.empty() ? 0 : cycle % cores.size();
    for (std::size_t ci = 0; ci < cores.size(); ++ci) {
      CoreState& core = cores[(first + ci) % cores.size()];
      if (core.done_count >= core.groups.size()) {
        continue;
      }
      for (std::size_t cl = 0; cl < n_cl; ++cl) {
        // Round-robin scan for one issueable instruction on this cluster.
        std::size_t resident = 0;
        for (std::size_t probe = 0; probe < core.groups.size(); ++probe) {
          const std::size_t gi =
              (core.rr[cl] + probe) % core.groups.size();
          if (gi % n_cl != cl) {
            continue;  // group not resident on this cluster
          }
          ++resident;
          GroupState& g = core.groups[gi];
          if (g.phase == Phase::kDone) {
            continue;
          }
          if (g.phase == Phase::kOverhead) {
            const auto pipe_idx = static_cast<std::size_t>(
                dev_.pipe_index(model::InstrClass::kAdd));
            const auto& pipe = dev_.pipe(model::InstrClass::kAdd);
            const auto occ = static_cast<std::uint64_t>(
                (dev_.n_t + pipe.units_per_cluster - 1) /
                pipe.units_per_cluster);
            if (std::max(g.counter_ready, core.pipe_free[cl][pipe_idx]) <=
                cycle) {
              core.pipe_free[cl][pipe_idx] = cycle + occ;
              g.counter_ready =
                  cycle + std::max<std::uint64_t>(
                              occ, static_cast<std::uint64_t>(
                                       pipe.latency_cycles));
              ++stats.instructions;
              advance(program, g, opts_.loop_overhead_instrs);
              if (g.phase == Phase::kDone) {
                ++core.done_count;
              }
              core.rr[cl] = (core.rr[cl] + probe + 1) % core.groups.size();
              break;
            }
            continue;
          }
          const Instr* in = current_instr(program, g);
          if (in == nullptr) {
            advance(program, g, opts_.loop_overhead_instrs);
            if (g.phase == Phase::kDone) {
              ++core.done_count;
            }
            continue;
          }
          std::uint64_t ready = 0;
          if (in->src1 != kNoReg) {
            ready = std::max(
                ready, g.reg_ready[static_cast<std::size_t>(in->src1)]);
          }
          if (in->src2 != kNoReg) {
            ready = std::max(
                ready, g.reg_ready[static_cast<std::size_t>(in->src2)]);
          }
          const auto pipe_idx = static_cast<std::size_t>(
              dev_.pipe_index(instr_class(in->op)));
          ready = std::max(ready, core.pipe_free[cl][pipe_idx]);
          if (ready > cycle) {
            continue;
          }
          // Global memory operations must win bus tokens to issue.
          if (is_mem(in->op) && bytes_per_mem_op > 0.0) {
            if (bus_tokens < bytes_per_mem_op) {
              continue;  // bus saturated; retry next cycle
            }
            bus_tokens -= bytes_per_mem_op;
            stats.dram_bytes_served += bytes_per_mem_op;
          }
          const std::uint64_t occ = issue_cycles_of(*in);
          core.pipe_free[cl][pipe_idx] = cycle + occ;
          if (in->dst != kNoReg) {
            g.reg_ready[static_cast<std::size_t>(in->dst)] =
                cycle + std::max(occ, latency_of(*in));
          }
          ++stats.instructions;
          advance(program, g, opts_.loop_overhead_instrs);
          if (g.phase == Phase::kDone) {
            ++core.done_count;
          }
          core.rr[cl] = (core.rr[cl] + probe + 1) % core.groups.size();
          break;
        }
        (void)resident;
      }
      if (core.done_count >= core.groups.size() && core.finished_at == 0) {
        core.finished_at = cycle + 1;
        ++cores_done;
      }
    }
    ++cycle;
  }

  stats.cycles = cycle;
  for (std::size_t ci = 0; ci < cores.size(); ++ci) {
    stats.core_cycles[ci] =
        cores[ci].finished_at != 0 ? cores[ci].finished_at : cycle;
  }
  stats.bus_utilization =
      cycle > 0 ? stats.dram_bytes_served /
                      (bus_.bytes_per_cycle * static_cast<double>(cycle))
                : 0.0;
  return stats;
}

}  // namespace snp::sim
