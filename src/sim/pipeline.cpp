#include "sim/pipeline.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <vector>

namespace snp::sim {

int bank_conflict_factor(const model::GpuSpec& dev, int stride_words) {
  if (stride_words == 0) {
    return 1;  // broadcast
  }
  std::vector<int> hits(static_cast<std::size_t>(dev.banks), 0);
  for (int lane = 0; lane < dev.n_t; ++lane) {
    const auto bank = static_cast<std::size_t>(
        (static_cast<long long>(lane) * stride_words) % dev.banks);
    ++hits[bank];
  }
  const int worst = *std::max_element(hits.begin(), hits.end());
  const int unavoidable = (dev.n_t + dev.banks - 1) / dev.banks;
  return std::max(1, worst / std::max(1, unavoidable));
}

CoreSim::CoreSim(model::GpuSpec dev, SimOptions opts)
    : dev_(std::move(dev)), opts_(opts) {
  if (!dev_.valid()) {
    throw std::invalid_argument("CoreSim: invalid device spec");
  }
}

namespace {

enum class Phase : std::uint8_t { kPrologue, kBody, kOverhead, kEpilogue,
                                  kDone };

struct GroupState {
  Phase phase = Phase::kPrologue;
  std::size_t pc = 0;
  std::uint64_t iter = 0;
  int overhead_left = 0;
  std::vector<std::uint64_t> reg_ready;  // cycle at which each reg is ready
  std::uint64_t counter_ready = 0;       // synthetic loop-counter chain
};

const Instr* current_instr(const Program& prog, const GroupState& g) {
  switch (g.phase) {
    case Phase::kPrologue:
      return &prog.prologue[g.pc];
    case Phase::kBody:
      return &prog.body[g.pc];
    case Phase::kEpilogue:
      return &prog.epilogue[g.pc];
    case Phase::kOverhead:
    case Phase::kDone:
      return nullptr;
  }
  return nullptr;
}

void advance(const Program& prog, GroupState& g, int overhead_instrs) {
  switch (g.phase) {
    case Phase::kPrologue:
      if (++g.pc >= prog.prologue.size()) {
        g.pc = 0;
        g.phase = prog.body.empty() || prog.iterations == 0
                      ? Phase::kEpilogue
                      : Phase::kBody;
        if (g.phase == Phase::kEpilogue && prog.epilogue.empty()) {
          g.phase = Phase::kDone;
        }
      }
      break;
    case Phase::kBody:
      if (++g.pc >= prog.body.size()) {
        g.pc = 0;
        ++g.iter;
        if (overhead_instrs > 0) {
          g.phase = Phase::kOverhead;
          g.overhead_left = overhead_instrs;
        } else if (g.iter >= prog.iterations) {
          g.phase = prog.epilogue.empty() ? Phase::kDone : Phase::kEpilogue;
        }
      }
      break;
    case Phase::kOverhead:
      if (--g.overhead_left <= 0) {
        if (g.iter >= prog.iterations) {
          g.phase = prog.epilogue.empty() ? Phase::kDone : Phase::kEpilogue;
        } else {
          g.phase = Phase::kBody;
        }
      }
      break;
    case Phase::kEpilogue:
      if (++g.pc >= prog.epilogue.size()) {
        g.phase = Phase::kDone;
      }
      break;
    case Phase::kDone:
      break;
  }
}

}  // namespace

CoreStats CoreSim::run(const Program& program, int n_groups) const {
  if (n_groups <= 0) {
    throw std::invalid_argument("CoreSim::run: n_groups must be > 0");
  }
  const int regs = program.max_register() + 1;
  const std::size_t n_pipes = dev_.pipes.size();

  std::vector<GroupState> groups(static_cast<std::size_t>(n_groups));
  for (auto& g : groups) {
    g.reg_ready.assign(static_cast<std::size_t>(std::max(regs, 1)), 0);
    if (program.prologue.empty()) {
      g.phase = program.body.empty() ? Phase::kEpilogue : Phase::kBody;
      if (g.phase == Phase::kEpilogue && program.epilogue.empty()) {
        g.phase = Phase::kDone;
      }
    }
  }

  // Per-cluster pipe occupancy and round-robin pointers.
  const auto n_cl = static_cast<std::size_t>(dev_.n_clusters);
  std::vector<std::array<std::uint64_t, 8>> pipe_free(
      n_cl, std::array<std::uint64_t, 8>{});
  std::vector<std::size_t> rr(n_cl, 0);

  // Groups resident on each cluster (round-robin assignment).
  std::vector<std::vector<std::size_t>> resident(n_cl);
  for (std::size_t g = 0; g < groups.size(); ++g) {
    resident[g % n_cl].push_back(g);
  }

  CoreStats stats;
  std::uint64_t cycle = 0;
  std::uint64_t done_count = 0;
  const std::uint64_t total = groups.size();

  auto issue_cycles_of = [&](const Instr& in) -> std::uint64_t {
    const auto cls = instr_class(in.op);
    const auto& pipe = dev_.pipe(cls);
    auto occ = static_cast<std::uint64_t>(
        (dev_.n_t + pipe.units_per_cluster - 1) / pipe.units_per_cluster);
    if (in.op == Opcode::kLds && opts_.model_bank_conflicts) {
      occ *= static_cast<std::uint64_t>(bank_conflict_factor(dev_, in.imm));
    }
    return occ;
  };
  auto latency_of = [&](const Instr& in) -> std::uint64_t {
    if (in.op == Opcode::kLdg) {
      return static_cast<std::uint64_t>(opts_.global_latency_cycles);
    }
    return static_cast<std::uint64_t>(
        dev_.pipe(instr_class(in.op)).latency_cycles);
  };

  while (done_count < total) {
    bool issued_any = false;
    std::uint64_t next_event = std::numeric_limits<std::uint64_t>::max();

    for (std::size_t cl = 0; cl < n_cl; ++cl) {
      const auto& res = resident[cl];
      if (res.empty()) {
        continue;
      }
      // Round-robin scan for one issueable group-instruction.
      for (std::size_t probe = 0; probe < res.size(); ++probe) {
        const std::size_t gi = res[(rr[cl] + probe) % res.size()];
        GroupState& g = groups[gi];
        if (g.phase == Phase::kDone) {
          continue;
        }
        if (g.phase == Phase::kOverhead) {
          // Synthetic loop counter: dependent kAdd chain on the add pipe.
          const auto pipe_idx = static_cast<std::size_t>(
              dev_.pipe_index(model::InstrClass::kAdd));
          const auto& pipe = dev_.pipe(model::InstrClass::kAdd);
          const auto occ = static_cast<std::uint64_t>(
              (dev_.n_t + pipe.units_per_cluster - 1) /
              pipe.units_per_cluster);
          const std::uint64_t ready =
              std::max(g.counter_ready, pipe_free[cl][pipe_idx]);
          if (ready <= cycle) {
            pipe_free[cl][pipe_idx] = cycle + occ;
            stats.pipe_busy_cycles[pipe_idx] += occ;
            g.counter_ready =
                cycle + std::max<std::uint64_t>(
                            occ, static_cast<std::uint64_t>(
                                     pipe.latency_cycles));
            ++stats.instructions;
            advance(program, g, opts_.loop_overhead_instrs);
            if (g.phase == Phase::kDone) {
              ++done_count;
            }
            rr[cl] = (rr[cl] + probe + 1) % res.size();
            issued_any = true;
            break;
          }
          next_event = std::min(next_event, ready);
          continue;
        }
        const Instr* in = current_instr(program, g);
        if (in == nullptr) {
          // Defensive: empty phase, advance without cost.
          advance(program, g, opts_.loop_overhead_instrs);
          if (g.phase == Phase::kDone) {
            ++done_count;
          }
          continue;
        }
        std::uint64_t ready = 0;
        if (in->src1 != kNoReg) {
          ready = std::max(ready, g.reg_ready[static_cast<std::size_t>(
                                      in->src1)]);
        }
        if (in->src2 != kNoReg) {
          ready = std::max(ready, g.reg_ready[static_cast<std::size_t>(
                                      in->src2)]);
        }
        const auto pipe_idx =
            static_cast<std::size_t>(dev_.pipe_index(instr_class(in->op)));
        ready = std::max(ready, pipe_free[cl][pipe_idx]);
        if (ready <= cycle) {
          const std::uint64_t occ = issue_cycles_of(*in);
          pipe_free[cl][pipe_idx] = cycle + occ;
          stats.pipe_busy_cycles[pipe_idx] += occ;
          if (in->dst != kNoReg) {
            g.reg_ready[static_cast<std::size_t>(in->dst)] =
                cycle + std::max(occ, latency_of(*in));
          }
          ++stats.instructions;
          advance(program, g, opts_.loop_overhead_instrs);
          if (g.phase == Phase::kDone) {
            ++done_count;
          }
          rr[cl] = (rr[cl] + probe + 1) % res.size();
          issued_any = true;
          break;
        }
        next_event = std::min(next_event, ready);
      }
    }

    if (done_count >= total) {
      break;
    }
    if (issued_any ||
        next_event == std::numeric_limits<std::uint64_t>::max()) {
      ++cycle;
    } else {
      cycle = std::max(cycle + 1, next_event);  // skip idle stretches
    }
  }

  // Completion: the last issued instruction still drains its pipe/latency.
  std::uint64_t drain = cycle;
  for (std::size_t cl = 0; cl < n_cl; ++cl) {
    for (std::size_t p = 0; p < n_pipes; ++p) {
      drain = std::max(drain, pipe_free[cl][p]);
    }
  }
  stats.cycles = drain;
  return stats;
}

}  // namespace snp::sim
