// Mini instruction IR for the model GPU.
//
// Rich enough to express the paper's microbenchmarks (dependent chains,
// throughput sweeps, pipe-sharing mixes, Section V-C/D) and the inner loop
// of the SNP-comparison kernel; deliberately nothing more. Programs are a
// prologue, a counted loop body, and an epilogue — mirroring the paper's
// microbenchmark skeleton ("a loop can be placed around the dependent
// chain...").
//
// The cycle simulator uses programs for *timing*; functional results of the
// SNP kernels are produced by the kern/ module's direct execution, so IR
// instructions carry only what timing needs (register dependences, target
// pipe, shared-memory access stride for bank-conflict modeling).
#pragma once

#include <array>
#include <cstdint>
#include <string_view>
#include <vector>

#include "model/device.hpp"

namespace snp::sim {

enum class Opcode : std::uint8_t {
  kAnd,   ///< dst = src1 & src2           (logic pipe)
  kXor,   ///< dst = src1 ^ src2           (logic pipe)
  kAndn,  ///< dst = src1 & ~src2          (logic pipe; fused where supported)
  kNot,   ///< dst = ~src1                 (logic pipe)
  kAdd,   ///< dst = src1 + src2           (add pipe/class)
  kPopc,  ///< dst = popcount(src1)        (popcount pipe)
  kMov,   ///< dst = src1                  (logic pipe)
  kMovi,  ///< dst = imm (immediate move, logic pipe)
  kLds,   ///< dst = shared[...]; imm = per-lane stride in words (mem pipe)
  kLdg,   ///< dst = global[...]           (mem pipe, long latency)
  kStg,   ///< global[...] = src1          (mem pipe)
  kSts,   ///< shared[...] = src1; imm = per-lane stride in words (mem pipe)
  kBar,   ///< thread-group barrier (publishes prior kSts to the group)
};

/// Address space a memory instruction touches. kShared is the per-group
/// LDS tile; the global spaces name the kernel's three operands so the
/// analyzer can prove accesses against their declared extents.
enum class Space : std::uint8_t {
  kNone,     ///< not a memory access, or address untracked (legacy)
  kShared,   ///< the A tile staged in local/shared memory
  kGlobalA,  ///< the packed A panel in global memory
  kGlobalB,  ///< the streamed B operand in global memory
  kGlobalC,  ///< the gamma/C output in global memory
};

[[nodiscard]] constexpr std::string_view to_string(Space s) {
  switch (s) {
    case Space::kNone:
      return "none";
    case Space::kShared:
      return "shared";
    case Space::kGlobalA:
      return "A";
    case Space::kGlobalB:
      return "B";
    case Space::kGlobalC:
      return "C";
  }
  return "?";
}

[[nodiscard]] constexpr model::InstrClass instr_class(Opcode op) {
  switch (op) {
    case Opcode::kAnd:
    case Opcode::kXor:
    case Opcode::kAndn:
    case Opcode::kNot:
    case Opcode::kMov:
    case Opcode::kMovi:
      return model::InstrClass::kLogic;
    case Opcode::kAdd:
      return model::InstrClass::kAdd;
    case Opcode::kPopc:
      return model::InstrClass::kPopc;
    case Opcode::kLds:
    case Opcode::kLdg:
    case Opcode::kStg:
    case Opcode::kSts:
    case Opcode::kBar:
      return model::InstrClass::kMem;
  }
  return model::InstrClass::kLogic;
}

[[nodiscard]] constexpr std::string_view to_string(Opcode op) {
  switch (op) {
    case Opcode::kAnd:
      return "AND";
    case Opcode::kXor:
      return "XOR";
    case Opcode::kAndn:
      return "ANDN";
    case Opcode::kNot:
      return "NOT";
    case Opcode::kAdd:
      return "ADD";
    case Opcode::kPopc:
      return "POPC";
    case Opcode::kMov:
      return "MOV";
    case Opcode::kMovi:
      return "MOVI";
    case Opcode::kLds:
      return "LDS";
    case Opcode::kLdg:
      return "LDG";
    case Opcode::kStg:
      return "STG";
    case Opcode::kSts:
      return "STS";
    case Opcode::kBar:
      return "BAR";
  }
  return "?";
}

/// Register operands are per-thread virtual registers. kNoReg marks an
/// unused source.
inline constexpr int kNoReg = -1;

struct Instr {
  Opcode op;
  int dst = kNoReg;
  int src1 = kNoReg;
  int src2 = kNoReg;
  /// Memory ops: per-lane address stride in 32-bit words. Drives the
  /// bank-conflict timing model for kLds and the analyzer's per-lane
  /// footprints for every memory op (0 = broadcast, all lanes read the
  /// same word). kMovi: the immediate value moved into dst.
  int imm = 0;
  /// Memory ops only: which operand the access touches. kNone leaves the
  /// access untracked (legacy microbenchmark programs), which skips the
  /// dataflow bounds/race footprint for that instruction.
  Space space = Space::kNone;
  /// Word offset of lane 0's access at body iteration 0 within `space`.
  long long base = 0;
  /// Words the access advances per body iteration (0 for prologue and
  /// epilogue instructions, and for accesses that revisit the same words
  /// every trip, e.g. the staged A tile).
  int iter_stride = 0;
};

struct Program {
  std::vector<Instr> prologue;
  std::vector<Instr> body;
  std::uint64_t iterations = 1;
  std::vector<Instr> epilogue;

  /// Declared LDS allocation in 32-bit words (the Eq. 4/5 tile). 0 means
  /// "not declared": the analyzer skips shared-memory bounds proofs.
  int shared_words = 0;
  /// Declared extents, in words, of the three global operands
  /// (index = Space::kGlobalA/B/C - Space::kGlobalA). 0 = unknown extent,
  /// which skips the bounds proof for accesses to that operand.
  std::array<long long, 3> extent_words{};

  [[nodiscard]] std::uint64_t dynamic_instructions() const {
    return prologue.size() + body.size() * iterations + epilogue.size();
  }
  [[nodiscard]] int max_register() const;
  /// Declared extent of `space` in words (shared_words for kShared);
  /// 0 when unknown or `space` is kNone.
  [[nodiscard]] long long extent_of(Space space) const {
    switch (space) {
      case Space::kShared:
        return shared_words;
      case Space::kGlobalA:
        return extent_words[0];
      case Space::kGlobalB:
        return extent_words[1];
      case Space::kGlobalC:
        return extent_words[2];
      case Space::kNone:
        break;
    }
    return 0;
  }
};

/// Builders for the paper's microbenchmark program shapes.

/// Section V-C: a chain of `chain_len` dependent `op` instructions per loop
/// iteration ("temp = popcount(temp); temp = popcount(temp); ...").
[[nodiscard]] Program dependent_chain(Opcode op, int chain_len,
                                      std::uint64_t iterations);

/// Independent streams of `op` (one accumulator per stream), enough ILP to
/// saturate the pipe; used for throughput measurement.
[[nodiscard]] Program independent_streams(Opcode op, int streams,
                                          int per_stream,
                                          std::uint64_t iterations);

/// Section V-D pipe-sharing probe: interleaves equal counts of `a` and `b`
/// on independent accumulators ("simultaneously performing population count
/// with an equal number of arithmetic operations").
[[nodiscard]] Program interleaved_pair(Opcode a, Opcode b, int pairs,
                                       std::uint64_t iterations);

/// Shared-memory load loop with a per-lane stride (bank-conflict probe).
[[nodiscard]] Program strided_lds(int stride_words, int loads,
                                  std::uint64_t iterations);

}  // namespace snp::sim
