// Memory-system models: DRAM streaming with multi-core contention, and the
// host<->device transfer engine.
//
// The paper's analytical model stops at the functional units; it explicitly
// flags un-modeled "memory system behaviors" as the suspected cause of the
// Vega 64 scaling anomaly (Section VI-C). This module supplies that missing
// piece in the simplest form that reproduces the data: each active core
// streams bytes at its compute-determined demand rate, and the device
// degrades per-core efficiency with a soft-min curve
//   eff(n) = (1 + (n * d / B_eff)^p)^(-1/p)
// where d is per-core demand, B_eff the device's achievable bandwidth and p
// the knee sharpness. One mechanism yields Fig. 5's %-of-peak, Fig. 7's
// scaling knees, and the small-K droop.
#pragma once

#include <cstddef>

#include "model/device.hpp"

namespace snp::sim {

/// Per-core efficiency factor in (0, 1] when `active_cores` cores each
/// demand `per_core_gbps` of DRAM streaming bandwidth.
[[nodiscard]] double contention_efficiency(const model::GpuSpec& dev,
                                           int active_cores,
                                           double per_core_gbps);

/// Seconds to move `bytes` across PCIe (one direction, bulk transfer).
[[nodiscard]] double pcie_seconds(const model::GpuSpec& dev,
                                  std::size_t bytes);

/// Fixed per-transfer software latency (enqueue, ring doorbell), seconds.
[[nodiscard]] double pcie_latency_seconds();

/// Seconds the one-time OpenCL platform/context/queue initialization costs
/// ("on the order of hundreds of milliseconds", Section VI-B).
[[nodiscard]] double init_seconds(const model::GpuSpec& dev);

/// Kernel-launch overhead in seconds (enqueue to start).
[[nodiscard]] double launch_seconds(const model::GpuSpec& dev);

}  // namespace snp::sim
