#include "sim/roofline.hpp"

#include <algorithm>

#include "model/peak.hpp"

namespace snp::sim {

double ridge_intensity(const model::GpuSpec& dev, bits::Comparison op,
                       bool pre_negated) {
  const double peak =
      model::peak_wordops_per_s(dev, op, pre_negated) / 1e9;  // Gword-ops/s
  return peak / dev.dram_gbps_effective;  // word-ops per byte
}

RooflinePoint roofline_for(const model::GpuSpec& dev, const model::KernelConfig& cfg,
                           bits::Comparison op,
                           const KernelShape& shape,
                           bool pre_negated) {
  const auto t = estimate_kernel(dev, cfg, op, shape, pre_negated);
  RooflinePoint p;
  p.arithmetic_intensity =
      t.dram_bytes > 0.0 ? t.wordops / t.dram_bytes : 0.0;
  p.peak_gops = t.peak_gops;
  p.attainable_gops = std::min(
      t.peak_gops, p.arithmetic_intensity * dev.dram_gbps_effective);
  p.achieved_gops = t.gops;
  p.memory_bound =
      p.arithmetic_intensity < ridge_intensity(dev, op, pre_negated);
  return p;
}

}  // namespace snp::sim
