// Cycle-level simulator of one model-GPU compute core (paper Section IV-A).
//
// Each core holds N_cl compute clusters. A cluster schedules its resident
// thread groups in round-robin order, issuing at most one instruction per
// cycle; an issued instruction occupies its functional-unit pipe for
// ceil(N_T / N_fn) cycles (times the bank-conflict factor for shared-memory
// loads) and its result becomes ready after the pipe latency L_fn. This is
// exactly the machine the paper's analytical model assumes: thread groups
// pipeline onto the functional units, and L_fn independent groups per
// cluster suffice to hide instruction latency.
//
// The simulator is timing-only (no architectural register values); it
// exists to run the paper's microbenchmark methodology (Section V-C/D)
// against known hardware parameters and to validate the tile-level timing
// model used for full-size kernels.
#pragma once

#include <array>
#include <cstdint>

#include "model/device.hpp"
#include "sim/isa.hpp"

namespace snp::sim {

struct SimOptions {
  /// Synthetic loop-maintenance instructions (counter add + branch) charged
  /// per body iteration, forming a dependent chain per group — the effect
  /// the paper dilutes by growing the loop body.
  int loop_overhead_instrs = 2;
  bool model_bank_conflicts = true;
  /// Global-memory load latency in cycles (LDG); shared loads use L_fn.
  int global_latency_cycles = 400;
};

struct CoreStats {
  std::uint64_t cycles = 0;
  std::uint64_t instructions = 0;  ///< thread-group instructions issued
  std::array<std::uint64_t, 8> pipe_busy_cycles{};

  [[nodiscard]] double ipc() const {
    return cycles == 0 ? 0.0
                       : static_cast<double>(instructions) /
                             static_cast<double>(cycles);
  }
};

/// Serialization factor of a shared-memory access where lane i reads word
/// address i * stride_words: max lanes hitting one bank, relative to the
/// unavoidable ceil(N_T / N_b) phases. Stride 0 is a broadcast (factor 1).
[[nodiscard]] int bank_conflict_factor(const model::GpuSpec& dev,
                                       int stride_words);

class CoreSim {
 public:
  explicit CoreSim(model::GpuSpec dev, SimOptions opts = {});

  /// Runs `program` with `n_groups` thread groups resident on this core
  /// (assigned to clusters round-robin), to completion.
  [[nodiscard]] CoreStats run(const Program& program, int n_groups) const;

  [[nodiscard]] const model::GpuSpec& device() const { return dev_; }

 private:
  model::GpuSpec dev_;
  SimOptions opts_;
};

}  // namespace snp::sim
