#include "sim/transfer.hpp"

#include <algorithm>
#include <stdexcept>

#include "sim/memory.hpp"

namespace snp::sim {

double Timeline::overlap_fraction() const {
  const double transfer = h2d_seconds + d2h_seconds;
  if (transfer <= 0.0) {
    return 0.0;
  }
  const double serial_total = init_seconds + transfer + kernel_seconds;
  const double hidden = serial_total - total_seconds;
  return std::clamp(hidden / transfer, 0.0, 1.0);
}

Timeline run_timeline(const model::GpuSpec& dev,
                      const std::vector<Chunk>& chunks,
                      const TimelineOptions& opts) {
  if (opts.buffer_depth < 1) {
    throw std::invalid_argument("run_timeline: buffer_depth must be >= 1");
  }
  Timeline tl;
  tl.init_seconds = opts.include_init ? init_seconds(dev) : 0.0;
  tl.chunks.resize(chunks.size());

  double h2d_free = tl.init_seconds;
  double compute_free = tl.init_seconds;
  double d2h_free = tl.init_seconds;
  const double lat = pcie_latency_seconds();
  const int depth = opts.double_buffered ? opts.buffer_depth : 1;

  for (std::size_t i = 0; i < chunks.size(); ++i) {
    const Chunk& c = chunks[i];
    ChunkTimes& t = tl.chunks[i];

    // Input buffer for chunk i frees when chunk i-depth's kernel retires.
    double buffer_ready = tl.init_seconds;
    if (i >= static_cast<std::size_t>(depth)) {
      buffer_ready = tl.chunks[i - static_cast<std::size_t>(depth)]
                         .kernel_end;
    }
    t.h2d_start = std::max(h2d_free, buffer_ready);
    t.h2d_end = c.h2d_bytes > 0
                    ? t.h2d_start + lat + pcie_seconds(dev, c.h2d_bytes)
                    : t.h2d_start;
    h2d_free = t.h2d_end;
    tl.h2d_seconds += t.h2d_end - t.h2d_start;

    t.kernel_start = std::max(compute_free, t.h2d_end) +
                     launch_seconds(dev);
    t.kernel_end = t.kernel_start + c.kernel_seconds;
    compute_free = t.kernel_end;
    tl.kernel_seconds += c.kernel_seconds;

    t.d2h_start = std::max(d2h_free, t.kernel_end);
    t.d2h_end = c.d2h_bytes > 0
                    ? t.d2h_start + lat + pcie_seconds(dev, c.d2h_bytes)
                    : t.d2h_start;
    d2h_free = t.d2h_end;
    tl.d2h_seconds += t.d2h_end - t.d2h_start;

    if (!opts.double_buffered) {
      // Fully serial: nothing for the next chunk starts before this one's
      // readback completes.
      h2d_free = compute_free = d2h_free = t.d2h_end;
    }
  }

  double end = tl.init_seconds;
  for (const auto& t : tl.chunks) {
    end = std::max({end, t.d2h_end, t.kernel_end, t.h2d_end});
  }
  tl.total_seconds = end;
  return tl;
}

}  // namespace snp::sim
