#include "sim/autotune.hpp"

#include <algorithm>
#include <set>
#include <stdexcept>

namespace snp::sim {

namespace {

/// Factor pairs (gm, gn) with gm * gn == cores.
std::vector<model::CoreGrid> grid_candidates(int cores, bool sweep) {
  std::vector<model::CoreGrid> grids;
  if (!sweep) {
    grids.push_back({cores, 1});
    return grids;
  }
  for (int gm = 1; gm <= cores; ++gm) {
    if (cores % gm == 0) {
      grids.push_back({gm, cores / gm});
    }
  }
  return grids;
}

}  // namespace

std::vector<TunedConfig> autotune(const model::GpuSpec& dev,
                                  bits::Comparison op,
                                  const KernelShape& shape,
                                  model::WorkloadKind kind,
                                  const AutotuneOptions& options) {
  if (shape.m == 0 || shape.n == 0 || shape.k_words == 0) {
    throw std::invalid_argument("autotune: degenerate shape");
  }
  std::vector<model::KernelConfig> candidates;
  // The Table II preset is always in the race (when defined).
  try {
    candidates.push_back(model::paper_preset(dev, kind));
  } catch (const std::invalid_argument&) {
    // Custom device without a preset: search only.
  }

  const std::size_t k_c_max =
      (dev.shared_bytes - dev.shared_reserved) / 4;
  const auto grids = grid_candidates(dev.n_cores, options.sweep_grid);
  for (const int m_c : options.m_c_candidates) {
    if (m_c <= 0 || m_c % dev.n_vec != 0) {
      continue;
    }
    for (const double frac : options.k_c_fractions) {
      const int k_c = static_cast<int>(
          static_cast<double>(k_c_max / static_cast<std::size_t>(m_c)) *
          frac);
      if (k_c <= 0) {
        continue;
      }
      const int step = options.n_r_step > 0
                           ? options.n_r_step
                           : std::max(model::n_r_lower_bound(dev,
                                                             dev.n_vec,
                                                             m_c),
                                      1);
      const int n_r_max = model::n_r_upper_bound(dev, dev.n_vec, m_c);
      for (int n_r = step; n_r <= n_r_max; n_r += step) {
        for (const auto& grid : grids) {
          model::KernelConfig cfg;
          cfg.m_r = dev.n_vec;
          cfg.m_c = m_c;
          cfg.k_c = k_c;
          cfg.n_r = n_r;
          cfg.grid = grid;
          candidates.push_back(cfg);
        }
      }
    }
  }

  std::vector<TunedConfig> ranked;
  std::set<std::string> seen;
  for (const auto& cfg : candidates) {
    if (!model::validate(cfg, dev).ok) {
      continue;
    }
    if (!seen.insert(cfg.to_string()).second) {
      continue;
    }
    const auto t = estimate_kernel(dev, cfg, op, shape, cfg.pre_negated);
    ranked.push_back({cfg, t.seconds, t.gops});
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const TunedConfig& a, const TunedConfig& b) {
              return a.seconds < b.seconds;
            });
  if (ranked.size() > options.top_k) {
    ranked.resize(options.top_k);
  }
  if (ranked.empty()) {
    throw std::runtime_error(
        "autotune: no feasible configuration found for " + dev.name);
  }
  return ranked;
}

double tuning_headroom(const model::GpuSpec& dev, bits::Comparison op,
                       const KernelShape& shape,
                       model::WorkloadKind kind) {
  const auto preset = model::paper_preset(dev, kind);
  const double preset_s =
      estimate_kernel(dev, preset, op, shape, preset.pre_negated).seconds;
  const auto best = autotune(dev, op, shape, kind);
  return preset_s / best.front().seconds;
}

}  // namespace snp::sim
