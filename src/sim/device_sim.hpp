// Device-level cycle simulation: many cores sharing one DRAM bus.
//
// The tile-level timing model prices multi-core memory contention with a
// calibrated soft-min curve (sim/memory.hpp). This simulator provides the
// mechanistic check: N cores run the same thread-group workload in
// lockstep, and every global load must win tokens from a shared
// token-bucket bus before it can issue. When aggregate demand is far
// below the bus rate, cores run as if alone; past saturation, per-core
// throughput falls toward bandwidth/share — the same asymptote the
// soft-min encodes. tests/test_device_sim.cpp pins the agreement.
//
// Scope: a deliberately small lockstep loop for workloads of
// microbenchmark size (the big kernels keep using the analytic model);
// per-cluster scheduling matches CoreSim (one issue per cluster per
// cycle, per-pipe occupancy, register scoreboard), with bank conflicts
// omitted (the probe programs here use global memory).
#pragma once

#include <cstdint>
#include <vector>

#include "model/device.hpp"
#include "sim/isa.hpp"
#include "sim/pipeline.hpp"

namespace snp::sim {

struct DramBusSpec {
  /// Bus service rate in bytes per core-clock cycle.
  double bytes_per_cycle = 64.0;
  /// Token-bucket burst capacity, in cycles' worth of service.
  double burst_cycles = 16.0;
};

struct DeviceStats {
  std::uint64_t cycles = 0;           ///< makespan (all cores done)
  std::vector<std::uint64_t> core_cycles;  ///< per-core finish time
  std::uint64_t instructions = 0;
  double dram_bytes_served = 0.0;
  /// Fraction of the bus's total capacity actually used.
  double bus_utilization = 0.0;
};

class DeviceSim {
 public:
  DeviceSim(model::GpuSpec dev, DramBusSpec bus, SimOptions opts = {});

  /// Runs `program` on `n_cores` cores, each with `groups_per_core`
  /// resident thread groups, in lockstep on the shared bus. Every LDG/STG
  /// moves `bytes_per_mem_op` across the bus.
  [[nodiscard]] DeviceStats run(const Program& program, int groups_per_core,
                                int n_cores,
                                double bytes_per_mem_op) const;

  [[nodiscard]] const model::GpuSpec& device() const { return dev_; }

 private:
  model::GpuSpec dev_;
  DramBusSpec bus_;
  SimOptions opts_;
};

}  // namespace snp::sim
