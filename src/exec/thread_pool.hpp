// snp::exec — host-side asynchronous execution engine.
//
// The paper's end-to-end numbers depend on overlapping chunk transfer with
// compute (Section VI-A); Beyer & Bientinesi's HDD->GPU streaming work and
// Samsi et al.'s GPU DNA-mixture pipeline both reach sustained throughput
// the same way: an asynchronous host pipeline keeps every engine busy.
// This module is the reusable scheduler behind our async paths — a plain
// fixed-size worker pool with a FIFO work queue, futures for one-shot
// results, and a counting semaphore for bounded in-flight backpressure.
// TaskGraph (task_graph.hpp) layers dependency edges on top.
//
// Threading contract: submission is thread-safe; tasks run exactly once;
// a pool constructed with 0 threads degenerates to inline execution on the
// submitting thread (the serial path — used to make "async with 1-thread
// semantics" trivially deterministic and debuggable).
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "obs/obs.hpp"

namespace snp::exec {

/// Counting semaphore used for bounded in-flight chunk scheduling (the
/// producer blocks in acquire() once `count` chunks are queued but not yet
/// drained). std::counting_semaphore exists, but this one is introspectable
/// (available()) and keeps the module self-contained.
class Semaphore {
 public:
  explicit Semaphore(std::size_t count) : count_(count) {}

  void acquire() {
    std::unique_lock lock(mu_);
    cv_.wait(lock, [&] { return count_ > 0; });
    --count_;
  }

  /// acquire() that gives up after `timeout`. Producers gating on tasks
  /// that release slots must use this and poll an abort condition (e.g.
  /// TaskGraph::failed()): a failed pipeline skips its remaining tasks,
  /// so the releases pending on them never happen and a plain acquire()
  /// would deadlock.
  [[nodiscard]] bool acquire_for(std::chrono::milliseconds timeout) {
    std::unique_lock lock(mu_);
    if (!cv_.wait_for(lock, timeout, [&] { return count_ > 0; })) {
      return false;
    }
    --count_;
    return true;
  }

  void release() {
    {
      const std::lock_guard lock(mu_);
      ++count_;
    }
    cv_.notify_one();
  }

  [[nodiscard]] std::size_t available() const {
    const std::lock_guard lock(mu_);
    return count_;
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::size_t count_;
};

/// Fixed-size worker pool over a FIFO queue. Destruction drains: every task
/// posted before the destructor runs is executed before the workers join
/// (shutdown never drops queued work — an async compare() that goes out of
/// scope mid-stream still delivers every chunk).
class ThreadPool {
 public:
  /// `threads == 0` runs every task inline on the posting thread.
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t thread_count() const { return workers_.size(); }

  /// Tasks queued but not yet picked up by a worker. Instantaneous —
  /// meaningful as a backpressure signal, not a completion check (pair
  /// with active_workers() or wait_idle()). Feeds the
  /// "exec.pool.queue_depth" gauge.
  [[nodiscard]] std::size_t queue_depth() const;
  /// Workers currently executing a task (0 on an inline pool).
  [[nodiscard]] std::size_t active_workers() const;

  /// Hardware concurrency with a floor of 1 (hardware_concurrency() may
  /// legally return 0).
  [[nodiscard]] static std::size_t hardware_threads();

  /// Fire-and-forget. A throwing posted task no longer terminates the
  /// process: the first exception is captured and rethrown from the next
  /// wait_idle() (sticky until cleared), later ones are counted in
  /// failed_count(). On an inline (0-thread) pool the exception
  /// propagates directly to the poster. Use submit() or TaskGraph when a
  /// per-task result/exception channel is needed.
  void post(std::function<void()> task);

  /// Schedules `fn` and returns a future carrying its result or exception.
  template <typename F>
  [[nodiscard]] auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> fut = task->get_future();
    post([task]() { (*task)(); });
    return fut;
  }

  /// Blocks until the queue is empty and every worker is idle, then
  /// rethrows the first exception any posted task threw since the last
  /// clear_error() (the error is sticky: repeated calls keep throwing
  /// until cleared). Tasks posted concurrently with wait_idle() may or
  /// may not be covered; quiesce your producers first.
  void wait_idle();

  /// Tasks that threw since construction / the last clear_error().
  [[nodiscard]] std::size_t failed_count() const;
  /// Drops the captured first exception and resets failed_count().
  void clear_error();

 private:
  /// Queue entry: the task, its enqueue timestamp (feeds the
  /// "exec.pool.task_wait_seconds" histogram), and the poster's trace
  /// context, which the worker re-installs around the task body so
  /// request identity crosses the pool boundary (both only stamped in
  /// SNPCMP_OBS=ON builds; default-initialized otherwise).
  struct QueuedTask {
    std::function<void()> fn;
    std::chrono::steady_clock::time_point enqueued;
    obs::TraceContext trace;
  };

  void worker_loop();
  /// Caller holds mu_. Accrues the queue-depth time integral up to `now`
  /// (before the queue mutates) and republishes the
  /// "exec.pool.queue_depth_time_us" gauge — the pool-side Little's-law
  /// anchor, mirroring the service queue's svc.queue.depth_time_us.
  void note_queue_transition(std::chrono::steady_clock::time_point now);

  mutable std::mutex mu_;
  std::condition_variable cv_work_;   ///< workers wait here for tasks
  std::condition_variable cv_idle_;   ///< wait_idle() waits here
  std::deque<QueuedTask> queue_;
  std::vector<std::thread> workers_;
  std::size_t active_ = 0;  ///< tasks currently executing
  bool stop_ = false;
  std::exception_ptr first_error_;  ///< first pooled-task throw (sticky)
  std::size_t failed_ = 0;          ///< pooled tasks that threw
  /// Queue-depth time integral state (note_queue_transition).
  std::uint64_t depth_time_ns_ = 0;
  std::chrono::steady_clock::time_point last_queue_change_;
};

}  // namespace snp::exec
