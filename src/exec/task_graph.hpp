// Dependency-ordered task execution over a ThreadPool.
//
// A TaskGraph is a dynamic DAG: tasks may be added while the graph runs
// (the async compare() streams chunks into it under backpressure), each
// task names the already-added tasks it depends on, and a task is handed
// to the pool the moment its last dependency completes. This is how the
// chunk pipeline expresses pack -> kernel -> reduce edges and how in-order
// chunk delivery is enforced (drain task i depends on {kernel i, drain
// i-1}), without any stage ever blocking a worker thread.
//
// Failure semantics: the first exception thrown by any task is captured
// and rethrown from wait(); tasks depending (transitively) on a failed
// task are skipped, never run. The graph always quiesces — wait() returns
// after every added task has either run or been skipped.
#pragma once

#include <cstddef>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <condition_variable>
#include <vector>

#include "exec/thread_pool.hpp"

namespace snp::exec {

class TaskGraph {
 public:
  using TaskId = std::size_t;

  explicit TaskGraph(ThreadPool& pool) : pool_(pool) {}
  /// Blocks until the graph quiesces; task exceptions are swallowed here
  /// (call wait() first if you need them).
  ~TaskGraph();
  TaskGraph(const TaskGraph&) = delete;
  TaskGraph& operator=(const TaskGraph&) = delete;

  /// Adds a task depending on `deps` (each must be a previously returned
  /// TaskId). Thread-safe; may be called while the graph is executing.
  TaskId add(std::function<void()> fn, const std::vector<TaskId>& deps = {});

  /// Blocks until every added task has run or been skipped, then rethrows
  /// the first captured task exception, if any.
  void wait();

  [[nodiscard]] std::size_t added() const;
  [[nodiscard]] std::size_t completed() const;  ///< ran successfully
  [[nodiscard]] std::size_t skipped() const;    ///< dropped via failed dep
  /// True once any task has thrown. Producers streaming work into the
  /// graph under Semaphore backpressure poll this to stop scheduling —
  /// skipped tasks never run their slot releases.
  [[nodiscard]] bool failed() const;

 private:
  enum class State : unsigned char { kWaiting, kQueued, kDone, kFailed,
                                     kSkipped };

  struct Node {
    std::function<void()> fn;
    std::vector<TaskId> dependents;
    std::size_t pending = 0;  ///< unfinished dependencies
    bool dep_failed = false;
    State state = State::kWaiting;
  };

  void run(TaskId id);
  /// Marks `id` terminal, releases its dependents, schedules newly ready
  /// tasks. Called with mu_ NOT held.
  void finish(TaskId id, State terminal);
  void schedule(TaskId id);

  ThreadPool& pool_;
  mutable std::mutex mu_;
  std::condition_variable cv_done_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::size_t open_ = 0;       ///< nodes not yet terminal
  std::size_t completed_ = 0;
  std::size_t skipped_ = 0;
  std::exception_ptr error_;
};

}  // namespace snp::exec
