#include "exec/task_graph.hpp"

#include <stdexcept>
#include <utility>

namespace snp::exec {

TaskGraph::~TaskGraph() {
  try {
    wait();
  } catch (...) {
    // wait() already quiesced the graph; the error is intentionally
    // dropped when the caller never asked for it.
  }
}

TaskGraph::TaskId TaskGraph::add(std::function<void()> fn,
                                 const std::vector<TaskId>& deps) {
  TaskId id = 0;
  bool ready = false;
  bool dead = false;
  {
    const std::lock_guard lock(mu_);
    id = nodes_.size();
    auto node = std::make_unique<Node>();
    node->fn = std::move(fn);
    for (const TaskId dep : deps) {
      if (dep >= id) {
        throw std::out_of_range("TaskGraph::add: unknown dependency");
      }
      Node& d = *nodes_[dep];
      switch (d.state) {
        case State::kDone:
          break;  // already satisfied
        case State::kFailed:
        case State::kSkipped:
          node->dep_failed = true;
          break;
        default:
          d.dependents.push_back(id);
          ++node->pending;
      }
    }
    ready = node->pending == 0;
    dead = node->dep_failed;
    nodes_.push_back(std::move(node));
    ++open_;
    SNP_OBS_COUNT("exec.graph.tasks_added", 1);
    if (ready) {
      nodes_[id]->state = State::kQueued;
    }
  }
  if (ready) {
    if (dead) {
      finish(id, State::kSkipped);
    } else {
      schedule(id);
    }
  }
  return id;
}

void TaskGraph::schedule(TaskId id) {
  pool_.post([this, id] { run(id); });
}

void TaskGraph::run(TaskId id) {
  std::function<void()> fn;
  {
    const std::lock_guard lock(mu_);
    fn = std::move(nodes_[id]->fn);
  }
  try {
    fn();
  } catch (...) {
    {
      const std::lock_guard lock(mu_);
      if (!error_) {
        error_ = std::current_exception();
      }
    }
    SNP_OBS_COUNT("exec.graph.tasks_failed", 1);
    finish(id, State::kFailed);
    return;
  }
  finish(id, State::kDone);
}

void TaskGraph::finish(TaskId id, State terminal) {
  // Terminal states cascade: a failed/skipped task poisons its dependents,
  // which may themselves become terminal without running. Process the
  // closure with a worklist, collect runnable tasks, schedule them with
  // the lock released (inline pools run tasks inside post()).
  std::vector<TaskId> to_run;
  std::vector<std::pair<TaskId, State>> worklist{{id, terminal}};
  {
    const std::lock_guard lock(mu_);
    while (!worklist.empty()) {
      const auto [cur, state] = worklist.back();
      worklist.pop_back();
      Node& node = *nodes_[cur];
      node.state = state;
      --open_;
      if (state == State::kDone) {
        ++completed_;
        SNP_OBS_COUNT("exec.graph.tasks_completed", 1);
      } else if (state == State::kSkipped) {
        ++skipped_;
        SNP_OBS_COUNT("exec.graph.tasks_skipped", 1);
      }
      const bool bad = state != State::kDone;
      for (const TaskId dep_id : node.dependents) {
        Node& d = *nodes_[dep_id];
        d.dep_failed = d.dep_failed || bad;
        SNP_OBS_COUNT("exec.graph.deps_resolved", 1);
        if (--d.pending == 0) {
          d.state = State::kQueued;
          if (d.dep_failed) {
            worklist.emplace_back(dep_id, State::kSkipped);
          } else {
            to_run.push_back(dep_id);
          }
        }
      }
      node.dependents.clear();
    }
    if (open_ == 0) {
      // Notify while still holding mu_: the instant a waiter can observe
      // open_ == 0 it may return from wait() and destroy this graph, so no
      // member (cv_done_ included) may be touched after the lock drops.
      cv_done_.notify_all();
    }
  }
  for (const TaskId next : to_run) {
    schedule(next);
  }
}

void TaskGraph::wait() {
  std::unique_lock lock(mu_);
  cv_done_.wait(lock, [&] { return open_ == 0; });
  if (error_) {
    // Sticky: a failed graph keeps rethrowing from every wait() — it never
    // silently looks healthy again.
    const std::exception_ptr err = error_;
    lock.unlock();
    std::rethrow_exception(err);
  }
}

std::size_t TaskGraph::added() const {
  const std::lock_guard lock(mu_);
  return nodes_.size();
}

std::size_t TaskGraph::completed() const {
  const std::lock_guard lock(mu_);
  return completed_;
}

std::size_t TaskGraph::skipped() const {
  const std::lock_guard lock(mu_);
  return skipped_;
}

bool TaskGraph::failed() const {
  const std::lock_guard lock(mu_);
  return error_ != nullptr;
}

}  // namespace snp::exec
