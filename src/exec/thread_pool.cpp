#include "exec/thread_pool.hpp"

#include <algorithm>

namespace snp::exec {

ThreadPool::ThreadPool(std::size_t threads) {
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard lock(mu_);
    stop_ = true;
  }
  cv_work_.notify_all();
  for (auto& w : workers_) {
    w.join();
  }
}

std::size_t ThreadPool::hardware_threads() {
  return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

void ThreadPool::post(std::function<void()> task) {
  if (workers_.empty()) {
    task();  // inline mode: the posting thread is the worker
    return;
  }
  {
    const std::lock_guard lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_work_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mu_);
  cv_idle_.wait(lock, [&] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mu_);
      cv_work_.wait(lock, [&] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // stop_ set and the queue fully drained
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      const std::lock_guard lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) {
        cv_idle_.notify_all();
      }
    }
  }
}

}  // namespace snp::exec
