#include "exec/thread_pool.hpp"

#include <algorithm>

namespace snp::exec {

namespace {

[[maybe_unused]] double seconds_since(
    std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       t0)
      .count();
}

}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  last_queue_change_ = std::chrono::steady_clock::now();
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
  SNP_OBS_GAUGE_SET("exec.pool.workers", threads);
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard lock(mu_);
    stop_ = true;
  }
  cv_work_.notify_all();
  for (auto& w : workers_) {
    w.join();
  }
}

std::size_t ThreadPool::hardware_threads() {
  return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

std::size_t ThreadPool::queue_depth() const {
  const std::lock_guard lock(mu_);
  return queue_.size();
}

std::size_t ThreadPool::active_workers() const {
  const std::lock_guard lock(mu_);
  return active_;
}

void ThreadPool::post(std::function<void()> task) {
  SNP_OBS_COUNT("exec.pool.tasks_posted", 1);
  if (workers_.empty()) {
    // Inline mode: the posting thread is the worker.
    SNP_OBS_COUNT("exec.pool.tasks_inline", 1);
    task();
    return;
  }
  QueuedTask item;
  item.fn = std::move(task);
  // Trace identity is part of the execution contract (request ids exist
  // even with telemetry compiled out); only the wait clock is obs-gated.
  item.trace = obs::current_trace();
  if constexpr (obs::kEnabled) {
    item.enqueued = std::chrono::steady_clock::now();
  }
  {
    const std::lock_guard lock(mu_);
    if constexpr (obs::kEnabled) {
      note_queue_transition(item.enqueued);
    }
    queue_.push_back(std::move(item));
    SNP_OBS_GAUGE_SET("exec.pool.queue_depth",
                      static_cast<std::int64_t>(queue_.size()));
  }
  cv_work_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mu_);
  cv_idle_.wait(lock, [&] { return queue_.empty() && active_ == 0; });
  if (first_error_) {
    std::rethrow_exception(first_error_);
  }
}

std::size_t ThreadPool::failed_count() const {
  const std::lock_guard lock(mu_);
  return failed_;
}

void ThreadPool::clear_error() {
  const std::lock_guard lock(mu_);
  first_error_ = nullptr;
  failed_ = 0;
}

void ThreadPool::note_queue_transition(
    std::chrono::steady_clock::time_point now) {
  if (now < last_queue_change_) {
    return;  // a poster's pre-lock timestamp may race an earlier pop
  }
  depth_time_ns_ +=
      static_cast<std::uint64_t>(queue_.size()) *
      static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              now - last_queue_change_)
              .count());
  last_queue_change_ = now;
  SNP_OBS_GAUGE_SET("exec.pool.queue_depth_time_us",
                    depth_time_ns_ / 1000);
}

void ThreadPool::worker_loop() {
  for (;;) {
    QueuedTask task;
    {
      std::unique_lock lock(mu_);
      cv_work_.wait(lock, [&] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // stop_ set and the queue fully drained
      }
      if constexpr (obs::kEnabled) {
        note_queue_transition(std::chrono::steady_clock::now());
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      SNP_OBS_GAUGE_SET("exec.pool.queue_depth",
                        static_cast<std::int64_t>(queue_.size()));
      ++active_;
    }
    SNP_OBS_GAUGE_ADD("exec.pool.active_workers", 1);
    // A throwing task must not unwind the worker (std::thread would
    // terminate): capture the first exception for wait_idle() and keep
    // the pool serving — shutdown still drains every queued task.
    try {
      // Run under the poster's trace context: spans, flight events,
      // and fault records inside the task — and any tasks it posts in
      // turn (TaskGraph successors) — inherit the request identity.
      const obs::ScopedTraceContext trace_scope(task.trace);
      if constexpr (obs::kEnabled) {
        SNP_OBS_OBSERVE("exec.pool.task_wait_seconds",
                        seconds_since(task.enqueued));
        // maybe_unused: with SNPCMP_OBS=OFF the OBSERVE below is a no-op.
        [[maybe_unused]] const auto run0 = std::chrono::steady_clock::now();
        task.fn();
        SNP_OBS_OBSERVE("exec.pool.task_run_seconds", seconds_since(run0));
      } else {
        task.fn();
      }
    } catch (...) {
      SNP_OBS_COUNT("exec.pool.tasks_failed", 1);
      const std::lock_guard lock(mu_);
      ++failed_;
      if (!first_error_) {
        first_error_ = std::current_exception();
      }
    }
    SNP_OBS_COUNT("exec.pool.tasks_run", 1);
    SNP_OBS_GAUGE_SUB("exec.pool.active_workers", 1);
    {
      const std::lock_guard lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) {
        cv_idle_.notify_all();
      }
    }
  }
}

}  // namespace snp::exec
